package ompss

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteSVG renders the trace as a Gantt-style schedule: one horizontal band
// per worker lane, one rectangle per executed task, colored by task label.
// It gives the same at-a-glance view of pipeline fill and load balance that
// Paraver gave the paper's authors. Times are wall-clock for native runs
// and virtual for simulated ones.
func (tr *Tracer) WriteSVG(w io.Writer) error {
	type bar struct {
		lane       int
		start, end time.Duration
		label      string
	}
	labels := map[uint64]string{}
	open := map[uint64]bar{}
	var bars []bar
	maxLane := 0
	var span time.Duration
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case TraceSubmit:
			labels[ev.Task] = ev.Label
		case TraceStart:
			open[ev.Task] = bar{lane: ev.Worker, start: ev.At, label: labels[ev.Task]}
			if ev.Worker > maxLane {
				maxLane = ev.Worker
			}
		case TraceEnd:
			b, ok := open[ev.Task]
			if !ok {
				continue
			}
			delete(open, ev.Task)
			b.end = ev.At
			bars = append(bars, b)
			if ev.At > span {
				span = ev.At
			}
		}
	}
	if span == 0 {
		span = 1
	}

	// Stable color per distinct label.
	var names []string
	seen := map[string]bool{}
	for _, b := range bars {
		if !seen[b.label] {
			seen[b.label] = true
			names = append(names, b.label)
		}
	}
	sort.Strings(names)
	palette := []string{"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
		"#76b7b2", "#edc948", "#9c755f", "#bab0ac", "#d37295"}
	color := map[string]string{}
	for i, n := range names {
		color[n] = palette[i%len(palette)]
	}

	const (
		width   = 1000
		laneH   = 24
		laneGap = 4
		marginL = 60
		marginT = 20
	)
	height := marginT + (maxLane+1)*(laneH+laneGap) + 30
	scale := float64(width-marginL-10) / float64(span)

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n",
		width, height); err != nil {
		return err
	}
	for lane := 0; lane <= maxLane; lane++ {
		y := marginT + lane*(laneH+laneGap)
		fmt.Fprintf(w, `<text x="4" y="%d">lane %d</text>`+"\n", y+laneH-8, lane)
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f4f4f4"/>`+"\n",
			marginL, y, width-marginL-10, laneH)
	}
	for _, b := range bars {
		x := marginL + int(float64(b.start)*scale)
		bw := int(float64(b.end-b.start) * scale)
		if bw < 1 {
			bw = 1
		}
		y := marginT + b.lane*(laneH+laneGap)
		fmt.Fprintf(w,
			`<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%s [%v–%v]</title></rect>`+"\n",
			x, y+2, bw, laneH-4, color[b.label], xmlEscape(b.label), b.start, b.end)
	}
	// Legend.
	lx := marginL
	ly := marginT + (maxLane+1)*(laneH+laneGap) + 14
	for _, n := range names {
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", lx, ly-9, color[n])
		fmt.Fprintf(w, `<text x="%d" y="%d">%s</text>`+"\n", lx+14, ly, xmlEscape(n))
		lx += 14*len(n) + 40
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
