package ompss

import (
	"strings"
	"testing"
	"time"

	"ompssgo/machine"
)

func TestWriteSVGSchedule(t *testing.T) {
	tr := NewTracer()
	_, err := RunSim(machine.Paper(4), func(rt *Runtime) {
		x := new(int)
		for i := 0; i < 6; i++ {
			rt.Task(func(*TC) {}, Label("stageA"), Cost(100*time.Microsecond))
			rt.Task(func(*TC) { *x++ }, InOut(x), Label("stageB"), Cost(50*time.Microsecond))
		}
		rt.Taskwait()
	}, Trace(tr))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.WriteSVG(&sb); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	for _, want := range []string{"<svg", "</svg>", "lane 0", "stageA", "stageB", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<title>") != 12 {
		t.Fatalf("task rectangles = %d, want 12", strings.Count(svg, "<title>"))
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Fatalf("escape = %q", got)
	}
}
