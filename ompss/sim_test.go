package ompss

import (
	"testing"
	"time"

	"ompssgo/machine"
)

// simProgram spawns a fan of independent tasks followed by a reduction
// chain; used by several tests below.
func simProgram(nTasks int, cost time.Duration, out *[]int) func(*Runtime) {
	return func(rt *Runtime) {
		res := make([]int, nTasks)
		for i := 0; i < nTasks; i++ {
			i := i
			rt.Task(func(*TC) { res[i] = i * i }, OutSized(&res[i], 8), Cost(cost))
		}
		rt.Taskwait()
		*out = res
	}
}

func TestSimComputesRealResults(t *testing.T) {
	var res []int
	st, err := RunSim(machine.Paper(8), simProgram(32, 100*time.Microsecond, &res))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != i*i {
			t.Fatalf("res[%d] = %d, want %d", i, v, i*i)
		}
	}
	if st.Tasks != 32 {
		t.Fatalf("tasks = %d, want 32", st.Tasks)
	}
	if st.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestSimMatchesNativeResults(t *testing.T) {
	program := func(rt *Runtime) *int {
		x, y, z := new(int), new(int), new(int)
		rt.Task(func(*TC) { *x = 5 }, Out(x), Cost(time.Microsecond))
		rt.Task(func(*TC) { *y = *x * 3 }, In(x), Out(y), Cost(time.Microsecond))
		rt.Task(func(*TC) { *z = *y + *x }, In(x), In(y), Out(z), Cost(time.Microsecond))
		rt.Taskwait()
		return z
	}
	var simZ int
	if _, err := RunSim(machine.Paper(4), func(rt *Runtime) { simZ = *program(rt) }); err != nil {
		t.Fatal(err)
	}
	rt := New(Workers(2))
	nativeZ := *program(rt)
	rt.Shutdown()
	if simZ != nativeZ || simZ != 20 {
		t.Fatalf("sim=%d native=%d, want 20", simZ, nativeZ)
	}
}

func TestSimDeterministicReplay(t *testing.T) {
	run := func() machine.Stats {
		var res []int
		st, err := RunSim(machine.Paper(16), simProgram(64, 50*time.Microsecond, &res))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Events != b.Events {
		t.Fatalf("sim replay diverged: %+v vs %+v", a, b)
	}
}

func TestSimParallelSpeedup(t *testing.T) {
	measure := func(cores int) time.Duration {
		var res []int
		st, err := RunSim(machine.Paper(cores), simProgram(64, 500*time.Microsecond, &res))
		if err != nil {
			t.Fatal(err)
		}
		return st.Makespan
	}
	t1, t8 := measure(1), measure(8)
	speedup := float64(t1) / float64(t8)
	if speedup < 4 {
		t.Fatalf("8-core speedup = %.2f (t1=%v t8=%v), want ≥ 4", speedup, t1, t8)
	}
	if speedup > 8.5 {
		t.Fatalf("8-core speedup = %.2f exceeds physical limit", speedup)
	}
}

func TestSimPollingBeatsBlockingForShortPhases(t *testing.T) {
	// The rgbcmy mechanism at the runtime level: many short taskwait-
	// separated phases. Polling waits avoid wake latencies.
	phases := func(mode WaitMode) time.Duration {
		st, err := RunSim(machine.Paper(16), func(rt *Runtime) {
			res := make([]int, 16)
			for it := 0; it < 20; it++ {
				for i := range res {
					i := i
					rt.Task(func(*TC) { res[i]++ }, InOut(&res[i]), Cost(30*time.Microsecond))
				}
				rt.Taskwait()
			}
		}, Wait(mode))
		if err != nil {
			t.Fatal(err)
		}
		return st.Makespan
	}
	poll, block := phases(Polling), phases(Blocking)
	if poll >= block {
		t.Fatalf("polling (%v) should beat blocking (%v) for short phases", poll, block)
	}
}

func TestSimLocalitySchedulingHelpsChains(t *testing.T) {
	// Producer→consumer chains over sizable data: with locality
	// scheduling the consumer runs on the producer's core and reads warm
	// data; without it, consumers land anywhere (cold/remote). The
	// per-chain costs are deliberately heterogeneous — with identical
	// costs the deterministic FIFO rotation happens to reunite every
	// consumer with its producer's core by accident of symmetry.
	chains := func(locality bool) time.Duration {
		st, err := RunSim(machine.Config{Cores: 8, Sockets: 2, Seed: 1}, func(rt *Runtime) {
			const n = 32
			bufs := make([][]byte, n)
			for i := range bufs {
				bufs[i] = make([]byte, 1<<20)
			}
			for i := 0; i < n; i++ {
				i := i
				key := &bufs[i][0]
				pc := time.Duration(100+17*(i%7)) * time.Microsecond
				rt.Task(func(*TC) {}, OutSized(key, 1<<20), Cost(pc), Label("produce"))
				rt.Task(func(*TC) {}, InSized(key, 1<<20), Cost(60*time.Microsecond), Label("consume"))
			}
			rt.Taskwait()
		}, Locality(locality))
		if err != nil {
			t.Fatal(err)
		}
		return st.Makespan
	}
	with, without := chains(true), chains(false)
	if with >= without {
		t.Fatalf("locality on (%v) should beat off (%v) for producer-consumer chains", with, without)
	}
}

func TestSimPollingOccupancyExceedsUtilization(t *testing.T) {
	// Paper §5: a polling runtime keeps all cores loaded even when there
	// is not enough work. One long serial chain on a 16-core machine
	// leaves 15 workers spinning.
	st, err := RunSim(machine.Paper(16), func(rt *Runtime) {
		x := new(int)
		for i := 0; i < 20; i++ {
			rt.Task(func(*TC) { *x++ }, InOut(x), Cost(300*time.Microsecond))
		}
		rt.Taskwait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Occupancy <= 0.9 {
		t.Fatalf("polling occupancy = %.2f, want ≈1.0", st.Occupancy)
	}
	if st.Utilization >= 0.5 {
		t.Fatalf("utilization = %.2f for a serial chain on 16 cores, want small", st.Utilization)
	}
}

func TestSimBlockingFreesIdleCores(t *testing.T) {
	st, err := RunSim(machine.Paper(16), func(rt *Runtime) {
		x := new(int)
		for i := 0; i < 20; i++ {
			rt.Task(func(*TC) { *x++ }, InOut(x), Cost(300*time.Microsecond))
		}
		rt.Taskwait()
	}, Wait(Blocking))
	if err != nil {
		t.Fatal(err)
	}
	if st.Occupancy > 0.6 {
		t.Fatalf("blocking occupancy = %.2f, want low (cores released)", st.Occupancy)
	}
}

func TestSimTaskwaitOnPipeline(t *testing.T) {
	// The Listing-1 EOF idiom: taskwait on the read-stage context inside
	// the spawn loop.
	st, err := RunSim(machine.Paper(4), func(rt *Runtime) {
		rc := new(int) // read-stage context
		oc := new(int) // output-stage context
		const N = 3
		frames := make([]int, N)
		produced, consumed := 0, 0
		for k := 0; k < 10; k++ {
			slot := &frames[k%N]
			rt.Task(func(*TC) { produced++; *slot = produced },
				InOut(rc), OutSized(slot, 4096), Cost(50*time.Microsecond), Label("read"))
			rt.Task(func(*TC) { consumed += *slot },
				InOut(oc), In(slot), Cost(80*time.Microsecond), Label("output"))
			rt.TaskwaitOn(rc)
			if produced != k+1 {
				t.Errorf("iteration %d: taskwait on(rc) returned with produced=%d", k, produced)
			}
		}
		rt.Taskwait()
		if consumed != 55 {
			t.Errorf("consumed = %d, want 55", consumed)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 20 {
		t.Fatalf("tasks = %d, want 20", st.Tasks)
	}
}

func TestSimCriticalSerializes(t *testing.T) {
	st, err := RunSim(machine.Paper(8), func(rt *Runtime) {
		counter := 0
		for i := 0; i < 16; i++ {
			rt.Task(func(tc *TC) {
				tc.CriticalCost("c", 200*time.Microsecond, func() { counter++ })
			}, Cost(10*time.Microsecond))
		}
		rt.Taskwait()
		if counter != 16 {
			t.Errorf("counter = %d, want 16", counter)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 16 × 200µs of serialized critical work bounds the makespan below.
	if st.Makespan < 3200*time.Microsecond {
		t.Fatalf("critical sections did not serialize: makespan %v", st.Makespan)
	}
}

func TestSimNestedTasks(t *testing.T) {
	_, err := RunSim(machine.Paper(4), func(rt *Runtime) {
		total := 0
		rt.Task(func(tc *TC) {
			sub := make([]int, 4)
			for i := range sub {
				i := i
				tc.Task(func(*TC) { sub[i] = i + 1 }, Out(&sub[i]), Cost(20*time.Microsecond))
			}
			tc.Taskwait()
			for _, v := range sub {
				total += v
			}
		}, Cost(10*time.Microsecond))
		rt.Taskwait()
		if total != 10 {
			t.Errorf("nested total = %d, want 10", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimWorkersFewerThanCores(t *testing.T) {
	var res []int
	st, err := RunSim(machine.Paper(8), simProgram(16, 100*time.Microsecond, &res), Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 16 {
		t.Fatalf("tasks = %d", st.Tasks)
	}
	// Only 2 lanes work: utilization concentrated, makespan ≈ 8 tasks/lane.
	if st.Makespan < 700*time.Microsecond {
		t.Fatalf("2 workers cannot beat 8×100µs of work: %v", st.Makespan)
	}
}

func TestSimSingleCoreSerializesEverything(t *testing.T) {
	var res []int
	st, err := RunSim(machine.Paper(1), simProgram(10, 100*time.Microsecond, &res))
	if err != nil {
		t.Fatal(err)
	}
	if st.Makespan < 1000*time.Microsecond {
		t.Fatalf("1-core makespan %v below serial work bound 1ms", st.Makespan)
	}
	for i, v := range res {
		if v != i*i {
			t.Fatalf("res[%d]=%d", i, v)
		}
	}
}

func TestSimIfFalseChargedInline(t *testing.T) {
	st, err := RunSim(machine.Paper(4), func(rt *Runtime) {
		x := 0
		rt.Task(func(*TC) { x = 1 }, If(false), Cost(2*time.Millisecond))
		if x != 1 {
			t.Error("If(false) body did not run inline")
		}
		rt.Taskwait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Makespan < 2*time.Millisecond {
		t.Fatalf("inline task cost not charged: makespan %v", st.Makespan)
	}
	if st.Tasks != 0 {
		t.Fatalf("inline task counted as graph task: %d", st.Tasks)
	}
}

func TestSimTracer(t *testing.T) {
	tr := NewTracer()
	var res []int
	if _, err := RunSim(machine.Paper(4), simProgram(8, 50*time.Microsecond, &res), Trace(tr)); err != nil {
		t.Fatal(err)
	}
	sum := tr.Summary()
	if sum.Tasks != 8 {
		t.Fatalf("traced tasks = %d, want 8", sum.Tasks)
	}
	if sum.Span <= 0 {
		t.Fatal("trace span should use virtual time")
	}
	if sum.MaxConcurrent < 2 {
		t.Fatalf("independent tasks on 4 cores should overlap, MaxConcurrent=%d", sum.MaxConcurrent)
	}
}
