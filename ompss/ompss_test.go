package ompss

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"ompssgo/machine"
)

func TestNativeBasicTaskwait(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		rt := New(Workers(workers))
		var ran int32
		for i := 0; i < 20; i++ {
			rt.Task(func(*TC) { atomic.AddInt32(&ran, 1) })
		}
		rt.Taskwait()
		if got := atomic.LoadInt32(&ran); got != 20 {
			t.Fatalf("workers=%d: ran %d tasks, want 20", workers, got)
		}
		rt.Shutdown()
	}
}

func TestNativeDataflowOrdering(t *testing.T) {
	rt := New(Workers(4))
	defer rt.Shutdown()
	x := new(int)
	y := new(int)
	rt.Task(func(*TC) { *x = 21 }, Out(x))
	rt.Task(func(*TC) { *y = *x * 2 }, In(x), Out(y))
	rt.Task(func(*TC) { *y++ }, InOut(y))
	rt.Taskwait()
	if *y != 43 {
		t.Fatalf("dataflow result = %d, want 43", *y)
	}
}

func TestNativeChainThroughWorkers(t *testing.T) {
	rt := New(Workers(4))
	defer rt.Shutdown()
	acc := new(int)
	for i := 1; i <= 50; i++ {
		i := i
		rt.Task(func(*TC) { *acc += i }, InOut(acc))
	}
	rt.Taskwait()
	if *acc != 50*51/2 {
		t.Fatalf("chain sum = %d, want %d", *acc, 50*51/2)
	}
}

func TestNativeTaskwaitOn(t *testing.T) {
	rt := New(Workers(2))
	defer rt.Shutdown()
	slow := new(int)
	fast := new(int)
	rt.Task(func(*TC) { time.Sleep(5 * time.Millisecond); *slow = 1 }, Out(slow))
	rt.Task(func(*TC) { *fast = 1 }, Out(fast))
	rt.TaskwaitOn(fast)
	if *fast != 1 {
		t.Fatal("taskwait on(fast) returned before the fast task finished")
	}
	rt.TaskwaitOn(slow)
	if *slow != 1 {
		t.Fatal("taskwait on(slow) returned before the slow task finished")
	}
}

func TestNativeTaskwaitOnUntracked(t *testing.T) {
	rt := New(Workers(2))
	defer rt.Shutdown()
	rt.TaskwaitOn(new(int)) // never written: must not hang
}

func TestNativeCriticalMutualExclusion(t *testing.T) {
	rt := New(Workers(4))
	defer rt.Shutdown()
	counter := 0
	for i := 0; i < 100; i++ {
		rt.Task(func(tc *TC) {
			tc.Critical("ctr", func() { counter++ })
		})
	}
	rt.Taskwait()
	if counter != 100 {
		t.Fatalf("critical counter = %d, want 100", counter)
	}
}

// TestCriticalPanicReleasesLock pins the fix for the h264dec pipeline hang:
// a body that panics inside a named critical section becomes a *TaskPanic,
// and the critical lock must be released on the way out — a later task
// entering the same section must proceed, not deadlock. Covers both
// backends.
func TestCriticalPanicReleasesLock(t *testing.T) {
	run := func(rt *Runtime) (sawSecond bool) {
		d := rt.Register(new(int))
		h := rt.Go(func(tc *TC) error {
			tc.Critical("leaky", func() { panic("boom inside critical") })
			return nil
		}, d.AsInOut())
		rt.Task(func(tc *TC) {
			tc.Critical("leaky", func() { sawSecond = true })
		}, d.AsInOut())
		rt.Taskwait()
		if err := h.Err(); err == nil {
			t.Error("panicking critical body should surface as the task's error")
		}
		return sawSecond
	}
	rt := New(Workers(2), OnError(RunThrough))
	if !run(rt) {
		t.Fatal("native: second critical section never ran — lock leaked by the panic")
	}
	rt.Shutdown()

	var simSecond bool
	_, err := RunSim(machine.Paper(2), func(rt *Runtime) {
		simSecond = run(rt)
	}, OnError(RunThrough))
	if err == nil {
		t.Error("sim should report the task panic")
	}
	if !simSecond {
		t.Fatal("sim: second critical section never ran — lock leaked by the panic")
	}
}

func TestNativeNestedTasks(t *testing.T) {
	rt := New(Workers(4))
	defer rt.Shutdown()
	var leaves int32
	rt.Task(func(tc *TC) {
		for i := 0; i < 5; i++ {
			tc.Task(func(*TC) { atomic.AddInt32(&leaves, 1) })
		}
		tc.Taskwait() // waits for the nested children only
		if n := atomic.LoadInt32(&leaves); n != 5 {
			t.Errorf("nested taskwait saw %d leaves, want 5", n)
		}
	})
	rt.Taskwait()
	if leaves != 5 {
		t.Fatalf("leaves = %d, want 5", leaves)
	}
}

func TestNativeIfFalseRunsInline(t *testing.T) {
	rt := New(Workers(2))
	defer rt.Shutdown()
	ran := false
	x := new(int)
	rt.Task(func(*TC) { ran = true; *x = 7 }, Out(x), If(false))
	// Undeferred: already executed, before any taskwait.
	if !ran || *x != 7 {
		t.Fatal("If(false) task should execute inline at spawn")
	}
	st := rt.Stats()
	if st.Graph.Inlined != 0 && st.Graph.Submitted != 0 {
		t.Fatalf("inline task should not enter the graph: %+v", st.Graph)
	}
}

func TestNativeBlockingMode(t *testing.T) {
	rt := New(Workers(4), Wait(Blocking))
	var sum int32
	x := new(int)
	rt.Task(func(*TC) { atomic.AddInt32(&sum, 1); *x = 1 }, Out(x))
	for i := 0; i < 30; i++ {
		rt.Task(func(*TC) { atomic.AddInt32(&sum, 1) }, In(x))
	}
	rt.Taskwait()
	if sum != 31 {
		t.Fatalf("blocking mode ran %d tasks, want 31", sum)
	}
	rt.Shutdown()
}

func TestNativeShutdownDrainsAndIsIdempotent(t *testing.T) {
	rt := New(Workers(2))
	var ran int32
	for i := 0; i < 10; i++ {
		rt.Task(func(*TC) { atomic.AddInt32(&ran, 1) })
	}
	rt.Shutdown() // implicit end-of-program barrier
	rt.Shutdown()
	if ran != 10 {
		t.Fatalf("shutdown drained %d, want 10", ran)
	}
}

func TestNativeStats(t *testing.T) {
	rt := New(Workers(2))
	defer rt.Shutdown()
	x := new(int)
	// Hold the producer until the reader is submitted, so the RAW edge is
	// deterministically wired (a fast worker could otherwise finish the
	// producer before the reader's submission even looks for it).
	gate := make(chan struct{})
	rt.Task(func(*TC) { <-gate; *x = 1 }, Out(x))
	rt.Task(func(*TC) { _ = *x }, In(x))
	close(gate)
	rt.Taskwait()
	st := rt.Stats()
	if st.Graph.Submitted != 2 || st.Graph.Finished != 2 || st.Graph.Edges != 1 {
		t.Fatalf("stats = %+v", st.Graph)
	}
}

func TestNativePriorityAndLabelAccepted(t *testing.T) {
	rt := New(Workers(2))
	defer rt.Shutdown()
	done := false
	rt.Task(func(*TC) { done = true }, Priority(3), Label("prio"), Cost(time.Microsecond))
	rt.Taskwait()
	if !done {
		t.Fatal("priority task did not run")
	}
}

func TestNativeConcurrentClause(t *testing.T) {
	rt := New(Workers(4))
	defer rt.Shutdown()
	hist := new([64]int64)
	var idx int64 = -1
	for i := 0; i < 32; i++ {
		rt.Task(func(tc *TC) {
			slot := atomic.AddInt64(&idx, 1)
			hist[slot]++
		}, Concurrent(hist))
	}
	sum := new(int64)
	rt.Task(func(*TC) {
		var s int64
		for _, v := range hist {
			s += v
		}
		*sum = s
	}, In(hist), Out(sum))
	rt.Taskwait()
	if *sum != 32 {
		t.Fatalf("reduction after concurrent tasks = %d, want 32", *sum)
	}
}

// TestNativeSequentialEquivalenceProperty checks the model's core promise on
// the public API: any program of tasks annotated with faithful dependence
// clauses computes the same result as its sequential elision.
func TestNativeSequentialEquivalenceProperty(t *testing.T) {
	type op struct {
		dst, src int
		k        int
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nvars = 4
		nops := rng.Intn(30) + 5
		ops := make([]op, nops)
		for i := range ops {
			ops[i] = op{dst: rng.Intn(nvars), src: rng.Intn(nvars), k: rng.Intn(7)}
		}
		run := func(parallel bool) [nvars]int {
			var vars [nvars]int
			ptrs := [nvars]*int{}
			for i := range vars {
				vars[i] = i + 1
				ptrs[i] = &vars[i]
			}
			if parallel {
				rt := New(Workers(3), Seed(seed))
				for _, o := range ops {
					o := o
					rt.Task(func(*TC) { *ptrs[o.dst] += *ptrs[o.src] * o.k },
						In(ptrs[o.src]), InOut(ptrs[o.dst]))
				}
				rt.Taskwait()
				rt.Shutdown()
			} else {
				for _, o := range ops {
					vars[o.dst] += vars[o.src] * o.k
				}
			}
			return vars
		}
		return run(true) == run(false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerRecordsLifecycle(t *testing.T) {
	tr := NewTracer()
	rt := New(Workers(2), Trace(tr))
	x := new(int)
	// Gate the producer so the consume edge is deterministically wired.
	gate := make(chan struct{})
	rt.Task(func(*TC) { <-gate; *x = 1 }, Out(x), Label("produce"))
	rt.Task(func(*TC) { _ = *x }, In(x), Label("consume"))
	close(gate)
	rt.Taskwait()
	rt.Shutdown()
	sum := tr.Summary()
	if sum.Tasks != 2 || sum.Edges != 1 {
		t.Fatalf("trace summary = %+v", sum)
	}
	var starts, ends int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case TraceStart:
			starts++
		case TraceEnd:
			ends++
		}
	}
	if starts != 2 || ends != 2 {
		t.Fatalf("starts=%d ends=%d, want 2,2", starts, ends)
	}
}

func TestTracerDOT(t *testing.T) {
	tr := NewTracer()
	rt := New(Workers(2), Trace(tr))
	x := new(int)
	// Gate A so the A->B edge is deterministically wired.
	gate := make(chan struct{})
	rt.Task(func(*TC) { <-gate; *x = 1 }, Out(x), Label("A"))
	rt.Task(func(*TC) { _ = *x }, In(x), Label("B"))
	close(gate)
	rt.Taskwait()
	rt.Shutdown()
	var buf testWriter
	if err := tr.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"digraph taskgraph", `label="A"`, `label="B"`, "->"} {
		if !contains(s, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, s)
		}
	}
}

type testWriter struct{ b []byte }

func (w *testWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *testWriter) String() string              { return string(w.b) }

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
