package ompss

import (
	"context"
	"fmt"
	"time"

	"ompssgo/internal/core"
	"ompssgo/internal/obs"
	"ompssgo/internal/tune"
	"ompssgo/internal/vm"
	"ompssgo/machine"
)

// RunSim executes an OmpSs program on the simulated cc-NUMA machine. The
// program callback runs in the machine's master virtual thread; every task
// body executes for real (results are bit-identical to native runs) while
// virtual time advances according to declared Cost clauses, dependence
// footprints, and runtime overheads (task spawn, dispatch, dependence edges,
// idle waiting in the configured WaitMode).
//
// Workers defaults to the machine's core count. The master thread is pinned
// to core 0; dedicated workers occupy the remaining cores (wrapping —
// timesliced — if Workers exceeds Cores).
func RunSim(mc machine.Config, program func(*Runtime), opts ...Option) (machine.Stats, error) {
	return RunSimCtx(context.Background(), mc, program, opts...)
}

// RunSimCtx is RunSim bounded by a context: when ctx is cancelled, the
// simulated runtime drains its graph by skipping every task that has not
// started yet (each finishes with a *SkipError wrapping the cancellation
// cause) and the run returns ctx's error. Cancellation is observed at
// scheduling points — task dispatch, submission, and waits — since the
// simulation itself executes on the calling goroutine.
func RunSimCtx(ctx context.Context, mc machine.Config, program func(*Runtime), opts ...Option) (machine.Stats, error) {
	cfg := buildConfig(opts)
	if mc.Cores < 1 {
		mc.Cores = 1
	}
	if cfg.workers < 1 {
		cfg.workers = mc.Cores
	}
	v := vm.New(vm.Config{Cores: mc.Cores, Sockets: mc.Sockets, Seed: mc.Seed})
	b := &simBackend{
		cfg:         cfg,
		v:           v,
		cctx:        ctx,
		graph:       core.NewGraph(),
		sched:       core.NewSched(cfg.workers, cfg.schedPolicy(), cfg.seed),
		lanes:       make([]*vm.Thread, cfg.workers),
		ctxWaiters:  make(map[*core.Context][]*vm.Thread),
		taskWaiters: make(map[*core.Task][]*vm.Thread),
	}
	rt := &Runtime{be: b, cfg: cfg, simMode: true}
	b.rt = rt
	b.graph.ConfigureRenaming(core.Renaming{Enabled: cfg.renamingOn(), MaxVersions: cfg.renameCapN()})
	if cfg.tuningActive() {
		// Same control plane as the native backend, but fed virtual time, so
		// controller decisions are deterministic; Backoff is forced off — the
		// simulator's idle waiting is event-driven, there is no spin loop to
		// tune (documented no-op on Tuning.StealBackoff).
		b.tn = &core.Tunables{}
		b.ctl = tune.New(tune.Config{
			Workers:       cfg.workers,
			Grain:         cfg.tun.Grain.IsAuto(),
			Backoff:       false,
			RenameCap:     cfg.tun.RenameCap.IsAuto(),
			BaseRenameCap: cfg.renameCapN(),
			SchedStats:    b.sched.Stats,
			GraphStats:    b.graph.Stats,
			Event:         tuneEventFn(cfg.rec),
		}, b.tn, obs.NewAggregator(0))
		b.graph.SetTunables(b.tn)
		b.sched.SetTunables(b.tn)
	}
	if rec := cfg.rec; rec != nil {
		// Timestamps are the simulated machine's virtual clock; every
		// emission happens on the event loop's goroutine.
		rec.Attach(cfg.workers, "sim", true, func() int64 { return int64(v.Now()) })
		b.graph.SetProbe(rec)
		b.sched.SetProbe(rec)
	}

	master := cfg.workers - 1
	for lane := 0; lane < master; lane++ {
		lane := lane
		// Workers take cores 1..; the master keeps core 0.
		coreID := 1 + lane
		if mc.Cores > 0 {
			coreID %= mc.Cores
		}
		v.Go(fmt.Sprintf("ompss-w%d", lane), coreID, func(vt *vm.Thread) {
			b.workerLoop(vt, lane)
		})
	}
	v.Go("ompss-main", 0, func(vt *vm.Thread) {
		b.lanes[master] = vt
		rt.initMain(master)
		program(rt)
		b.shutdown(rt.main)
	})

	st, err := v.Run()
	if err == nil {
		// Task failures are captured as errors (so the simulation drains
		// cleanly) and surface here as the run's error: the cancellation
		// cause if the context fired, else the first task failure. Failures
		// confined to a request session (NewSession) stay on that session's
		// error surface and do not fail the run.
		if ctx.Err() != nil {
			err = ctx.Err()
		} else if r := rt.firstErr.Load(); r != nil {
			err = r.err
		}
	}
	return machine.Stats{
		Makespan:    time.Duration(st.Time),
		Utilization: st.Utilization(),
		Occupancy:   st.Occupancy(),
		Events:      st.Events,
		Tasks:       b.graph.Stats().Finished,
	}, err
}

// simBackend drives the shared engine from virtual threads on the simulated
// machine. Execution is serialized by the discrete-event loop, so the engine
// needs no locking here; costs are charged through the owning vm.Thread.
type simBackend struct {
	rt   *Runtime
	cfg  config
	v    *vm.VM
	cctx context.Context // RunSimCtx's context, polled at scheduling points

	graph *core.Graph
	sched *core.Sched
	lanes []*vm.Thread
	stop  bool

	// tn/ctl mirror the native backend's feedback-control plane (nil when no
	// Tuning field armed it); the controller consumes virtual execution times.
	tn  *core.Tunables
	ctl *tune.Controller

	ws          vm.WaitSet // Polling mode: idle workers and waiters
	idle        []*vm.Thread
	ctxWaiters  map[*core.Context][]*vm.Thread
	taskWaiters map[*core.Task][]*vm.Thread
	condWaiters []*vm.Thread // Blocking mode: waitFor parkers, woken on any finish

	crit critSet[vm.Mutex]
	comm commTable[vm.Mutex] // per-key commutative locks, rank-ordered
}

func (b *simBackend) thread(from *TC) *vm.Thread { return b.lanes[from.worker] }

// pollCtx checks the run's context at a scheduling point and switches the
// runtime into cancellation drain when it fired.
func (b *simBackend) pollCtx() {
	if b.cctx != nil && b.cctx.Err() != nil && b.rt.cancelCause() == nil {
		b.rt.cancelWith(context.Cause(b.cctx))
	}
}

// queueOp scales a scheduler-queue cost by the contention factor: the
// central ready-queue lock serializes under many threads (a known
// scalability limit of 2012-era task runtimes).
func (b *simBackend) queueOp(base vm.Time) vm.Time {
	cm := b.v.Cost()
	return base + vm.Time(float64(base)*cm.QueueContention*float64(b.cfg.workers-1))
}

func (b *simBackend) workerLoop(vt *vm.Thread, lane int) {
	b.lanes[lane] = vt
	cm := b.v.Cost()
	rec := b.cfg.rec
	idling := false
	for {
		b.pollCtx()
		t := b.sched.Pop(lane)
		if t == nil {
			if !idling {
				idling = true
				if rec != nil {
					rec.Emit(lane, obs.EvIdleEnter, 0, 0)
				}
			}
			if b.stop {
				if rec != nil {
					rec.Emit(lane, obs.EvIdleExit, 0, 0)
				}
				return
			}
			vt.Charge(cm.StealAttempt)
			b.idleWait(vt)
			continue
		}
		if idling {
			idling = false
			if rec != nil {
				rec.Emit(lane, obs.EvIdleExit, 0, 0)
			}
		}
		vt.Charge(b.queueOp(cm.TaskDispatch))
		b.graph.MarkRunning(t, lane)
		b.runTaskSim(vt, t, lane)
	}
}

func (b *simBackend) idleWait(vt *vm.Thread) {
	if b.cfg.wait == Polling {
		vt.SpinUntil(&b.ws, func() bool { return b.sched.Ready() > 0 || b.stop })
		return
	}
	b.idle = append(b.idle, vt)
	vt.Block("ompss-idle")
}

// wakeIdle releases up to n blocked idle workers (Blocking mode) or all
// polling waiters.
func (b *simBackend) wakeIdle(n int) {
	if b.cfg.wait == Polling {
		b.ws.WakeAll(b.v)
		return
	}
	cm := b.v.Cost()
	for i := 0; i < n && len(b.idle) > 0; i++ {
		t := b.idle[0]
		b.idle = b.idle[1:]
		b.v.WakeAt(t, b.v.Now()+cm.CondWake)
	}
}

func (b *simBackend) runTaskSim(vt *vm.Thread, t *core.Task, lane int) {
	cm := b.v.Cost()
	rec := b.cfg.rec
	quiet := taskQuiet(t)
	if rec != nil && !quiet {
		rec.Emit(lane, obs.EvStart, t.ID, 0)
	}
	b.pollCtx()
	var err error
	var t0 int64
	skipped := false
	if skip := b.rt.skipReason(t); skip != nil {
		// Skip-release: no body, no modeled compute or memory traffic —
		// a cancelled graph drains in (almost) zero virtual time.
		t.MarkSkipped()
		b.graph.CountSkipped()
		if rec != nil && !quiet {
			rec.Emit(lane, obs.EvSkip, t.ID, 0)
		}
		err = skip
		skipped = true
	} else {
		if b.ctl != nil {
			t0 = int64(b.v.Now())
		}
		// Memory-system cost of the task's declared footprints, evaluated
		// against where each datum was last produced (warmth/NUMA model).
		var mem vm.Time
		for _, a := range t.Accesses {
			mem += vt.TouchCost(a.Key, a.Bytes, a.Writes())
		}
		err = t.Body() // real execution; may add Compute/Critical charges itself
		vt.Compute(vm.Time(t.CPUCost) + mem)
	}
	b.rt.noteTaskErr(t, err)
	vt.Charge(cm.TaskFinish)
	vt.Flush()
	id, label, iters := t.ID, t.Label, t.Iters
	renamed, renameFallback := t.Renamed(), t.RenameFallback()
	ready := b.graph.Finish(t, err)
	if b.ctl != nil && !skipped {
		// The flush above advanced the virtual clock past the task's modeled
		// compute/memory time, so Now()−t0 is the task's virtual execution
		// time — the controller's decisions are deterministic under the
		// serialized event loop.
		end := int64(b.v.Now())
		b.ctl.TaskDone(label, end-t0, iters, renamed, renameFallback)
	}
	if rec != nil {
		// Stamped after the flush so End−Start covers the task's modeled
		// compute/memory time (Finish adds no virtual time); end and the
		// successors' ready events share the completion instant.
		obsFinish(rec, lane, id, quiet, ready)
	}
	for _, r := range ready {
		b.sched.PushReady(r, lane)
	}
	if len(ready) > 0 {
		vt.Charge(cm.DepEdge * vm.Time(len(ready)))
	}
	b.afterFinish(t, len(ready))
}

// afterFinish wakes whoever may be unblocked by t's completion: idle workers
// (released tasks), taskwaiters on a drained context, taskwait-on waiters.
func (b *simBackend) afterFinish(t *core.Task, released int) {
	if b.cfg.wait == Polling {
		b.ws.WakeAll(b.v)
		return
	}
	cm := b.v.Cost()
	b.wakeIdle(released)
	if b.graph.Unfinished() == 0 {
		// End-of-work edge: wake everything parked (including a master
		// parked in the shutdown drain), not just `released` workers.
		b.wakeIdle(len(b.idle))
	}
	if t.Parent != nil && t.Parent.Pending() == 0 {
		for _, w := range b.ctxWaiters[t.Parent] {
			b.v.WakeAt(w, b.v.Now()+cm.CondWake)
		}
		delete(b.ctxWaiters, t.Parent)
	}
	for _, w := range b.taskWaiters[t] {
		b.v.WakeAt(w, b.v.Now()+cm.CondWake)
	}
	delete(b.taskWaiters, t)
	// waitFor parkers re-check their predicate on every completion (session
	// drains and admission headroom can open on any finish).
	for _, w := range b.condWaiters {
		b.v.WakeAt(w, b.v.Now()+cm.CondWake)
	}
	b.condWaiters = b.condWaiters[:0]
}

// waitFor parks the calling virtual thread until cond holds, help-executing
// ready tasks meanwhile — the simulated counterpart of the native backend's
// waitFor (session drains and admission backpressure use it).
func (b *simBackend) waitFor(from *TC, cond func() bool) {
	vt := b.thread(from)
	cm := b.v.Cost()
	for !cond() {
		b.pollCtx()
		if t := b.sched.Pop(from.worker); t != nil {
			vt.Charge(b.queueOp(cm.TaskDispatch))
			b.graph.MarkRunning(t, from.worker)
			b.runTaskSim(vt, t, from.worker)
			continue
		}
		if b.cfg.wait == Polling {
			vt.SpinUntil(&b.ws, func() bool {
				return cond() || b.sched.Ready() > 0
			})
		} else {
			b.condWaiters = append(b.condWaiters, vt)
			vt.Block("ompss-waitfor")
		}
	}
}

func (b *simBackend) submit(from *TC, t *core.Task) {
	b.pollCtx()
	vt := b.thread(from)
	cm := b.v.Cost()
	vt.Charge(b.queueOp(cm.TaskSpawn) + cm.DepEdge*vm.Time(len(t.Accesses)))
	vt.Flush()
	ready := b.graph.Submit(t)
	obsSubmit(b.cfg.rec, from.worker, t, ready)
	if ready {
		b.sched.PushSubmit(t)
		b.wakeIdle(1)
	}
}

func (b *simBackend) submitBatch(from *TC, ts []*core.Task) {
	b.pollCtx()
	vt := b.thread(from)
	cm := b.v.Cost()
	// One contended queue acquisition for the whole batch — the modeled
	// counterpart of SubmitBatch's amortized shard locking — plus the
	// per-task dependence-edge work, which batching cannot amortize.
	charge := b.queueOp(cm.TaskSpawn)
	for _, t := range ts {
		charge += cm.DepEdge * vm.Time(len(t.Accesses))
	}
	vt.Charge(charge)
	vt.Flush()
	ready := b.graph.SubmitBatch(ts)
	obsSubmitBatch(b.cfg.rec, from.worker, ts, ready)
	b.sched.PushSubmitBatch(ready)
	b.wakeIdle(len(ready))
}

func (b *simBackend) taskwait(from *TC, ctx *core.Context) {
	vt := b.thread(from)
	cm := b.v.Cost()
	if rec := b.cfg.rec; rec != nil {
		rec.Emit(from.worker, obs.EvTaskwaitEnter, 0, 0)
		defer rec.Emit(from.worker, obs.EvTaskwaitExit, 0, 0)
	}
	for ctx.Pending() > 0 {
		b.pollCtx()
		if t := b.sched.Pop(from.worker); t != nil {
			vt.Charge(b.queueOp(cm.TaskDispatch))
			b.graph.MarkRunning(t, from.worker)
			b.runTaskSim(vt, t, from.worker)
			continue
		}
		if b.cfg.wait == Polling {
			vt.SpinUntil(&b.ws, func() bool {
				return b.sched.Ready() > 0 || ctx.Pending() == 0
			})
		} else {
			b.ctxWaiters[ctx] = append(b.ctxWaiters[ctx], vt)
			vt.Block("taskwait")
		}
	}
}

func (b *simBackend) taskwaitOn(from *TC, keys []any) {
	vt := b.thread(from)
	if rec := b.cfg.rec; rec != nil {
		rec.Emit(from.worker, obs.EvTaskwaitEnter, 0, 0)
		defer rec.Emit(from.worker, obs.EvTaskwaitExit, 0, 0)
	}
	for _, k := range keys {
		vt.Flush()
		for _, lw := range b.graph.Writers(k) {
			b.waitTask(vt, from, lw)
		}
	}
}

// waitTask blocks (or help-executes, in polling mode) until lw finishes.
func (b *simBackend) waitTask(vt *vm.Thread, from *TC, lw *core.Task) {
	cm := b.v.Cost()
	for !lw.Finished() {
		if b.cfg.wait == Polling {
			if t := b.sched.Pop(from.worker); t != nil {
				vt.Charge(b.queueOp(cm.TaskDispatch))
				b.graph.MarkRunning(t, from.worker)
				b.runTaskSim(vt, t, from.worker)
				continue
			}
			vt.SpinUntil(&b.ws, func() bool {
				return lw.Finished() || b.sched.Ready() > 0
			})
		} else {
			b.taskWaiters[lw] = append(b.taskWaiters[lw], vt)
			vt.Block("taskwait-on")
		}
	}
}

func (b *simBackend) critical(from *TC, name string, hold time.Duration, f func()) {
	vt := b.thread(from)
	l := b.crit.get(name)
	vt.Lock(l)
	// Deferred so a panicking body cannot leak the named lock (see the
	// native backend's critical).
	defer vt.Unlock(l)
	f()
	if hold > 0 {
		vt.Compute(vm.Time(hold))
	}
}

// commutative runs f holding the per-key locks of every listed key in
// ascending rank order (see commTable for the deadlock-freedom argument).
// The simulator is serialized, but virtual threads still block on
// vm.Mutex, so the same ordering discipline applies.
func (b *simBackend) commutative(from *TC, keys []any, f func()) {
	vt := b.thread(from)
	held := b.comm.resolve(keys)
	for _, l := range held {
		vt.Lock(&l.mu)
	}
	// Deferred so a panicking body (recovered into a task error above us)
	// cannot leak the locks and deadlock later commutative tasks.
	defer func() {
		for i := len(held) - 1; i >= 0; i-- {
			vt.Unlock(&held[i].mu)
		}
	}()
	f()
}

func (b *simBackend) compute(from *TC, d time.Duration) {
	if d > 0 {
		b.thread(from).Compute(vm.Time(d))
	}
}

func (b *simBackend) touch(from *TC, key any, bytes int64, write bool) {
	vt := b.thread(from)
	vt.Compute(vt.TouchCost(key, bytes, write))
}

func (b *simBackend) deps() *core.Graph { return b.graph }

// core.Backend seam (see internal/core/backend.go).
func (b *simBackend) DomainName() string          { return "sim" }
func (b *simBackend) Deps() *core.Graph           { return b.graph }
func (b *simBackend) GraphStats() core.GraphStats { return b.graph.Stats() }

var _ core.Backend = (*simBackend)(nil)

// cancelWake is a no-op for the simulator: the cancellation flag is polled
// at scheduling points on the simulation's own goroutine, and waking vm
// threads from a foreign goroutine would race the event loop.
func (b *simBackend) cancelWake() {}

func (b *simBackend) shutdown(from *TC) {
	if b.stop {
		return
	}
	vt := b.thread(from)
	cm := b.v.Cost()
	// Implicit end-of-program barrier across every context.
	for b.graph.Unfinished() > 0 {
		if t := b.sched.Pop(from.worker); t != nil {
			vt.Charge(b.queueOp(cm.TaskDispatch))
			b.graph.MarkRunning(t, from.worker)
			b.runTaskSim(vt, t, from.worker)
			continue
		}
		if b.cfg.wait == Polling {
			vt.SpinUntil(&b.ws, func() bool {
				return b.sched.Ready() > 0 || b.graph.Unfinished() == 0
			})
		} else {
			// Reuse the taskwait machinery: park until any finish.
			b.idle = append(b.idle, vt)
			vt.Block("shutdown-drain")
		}
	}
	b.stop = true
	// Release every idle worker so the worker loops can observe stop.
	if b.cfg.wait == Polling {
		b.ws.WakeAll(b.v)
	} else {
		b.wakeIdle(len(b.idle))
	}
}

func (b *simBackend) tuner() *tune.Controller { return b.ctl }

func (b *simBackend) stats() RunStats {
	return RunStats{Graph: b.graph.Stats(), Sched: b.sched.Stats(), Labels: labelStatsOf(b.ctl)}
}
