package ompss

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestNativeConcurrentSubmitStress hits the executor from many goroutines
// at once — the deployment shape of a server embedding the runtime: N
// goroutines share the master TC, each submitting dependent task chains
// with mixed In/Out/InOut/Commutative accesses, interleaved with shared
// commutative accumulation, then all of them taskwait together. This
// exercises lane aliasing (several threads popping the master lane — the
// scheduler's TryLock spill path), submit-vs-finish release races, and the
// sharded dependence tracker under cross-goroutine key sharing.
//
// Invariants: every per-goroutine InOut chain observes strictly sequential
// updates (ordering), the commutative total is exact (mutual exclusion +
// no lost tasks), and the graph drains to Submitted == Finished with no
// ready task stranded (no lost releases). Run under -race in CI.
func TestNativeConcurrentSubmitStress(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const (
				nGoroutines = 6
				chainLen    = 150
			)
			rt := New(Workers(workers))
			defer rt.Shutdown()

			shared := new(int64) // commutative accumulator
			config := new(int64) // read-only datum, In from everyone
			*config = 7
			chains := make([]*int64, nGoroutines)
			sums := make([]*int64, nGoroutines)
			for i := range chains {
				chains[i] = new(int64)
				sums[i] = new(int64)
			}
			var reads atomic.Int64

			var wg sync.WaitGroup
			for gi := 0; gi < nGoroutines; gi++ {
				wg.Add(1)
				go func(gi int) {
					defer wg.Done()
					c, sum := chains[gi], sums[gi]
					for k := 0; k < chainLen; k++ {
						k := k
						// InOut chain: strict order within the goroutine.
						rt.Task(func(*TC) {
							if *c != int64(k) {
								t.Errorf("goroutine %d chain saw %d at step %d", gi, *c, k)
							}
							*c++
						}, InOut(c), In(config))
						// Commutative accumulation across goroutines.
						rt.Task(func(*TC) {
							*shared += *config
						}, Commutative(shared), In(config))
						// Independent read, Out to a private slot.
						rt.Task(func(*TC) {
							reads.Add(*config / 7)
						}, In(config))
					}
					// Out-then-In epilogue per goroutine.
					rt.Task(func(*TC) { *sum = *c }, In(c), Out(sum))
					rt.Taskwait() // concurrent taskwaiters share the master lane
				}(gi)
			}
			wg.Wait()
			rt.Taskwait()

			for gi := range chains {
				if *chains[gi] != chainLen {
					t.Fatalf("goroutine %d chain ended at %d, want %d", gi, *chains[gi], chainLen)
				}
				if *sums[gi] != chainLen {
					t.Fatalf("goroutine %d epilogue read %d, want %d", gi, *sums[gi], chainLen)
				}
			}
			if want := int64(nGoroutines * chainLen * 7); *shared != want {
				t.Fatalf("commutative total %d, want %d", *shared, want)
			}
			if got, want := reads.Load(), int64(nGoroutines*chainLen); got != want {
				t.Fatalf("independent reads %d, want %d", got, want)
			}

			st := rt.Stats()
			total := uint64(nGoroutines * (3*chainLen + 1))
			if st.Graph.Submitted != total || st.Graph.Finished != total {
				t.Fatalf("graph imbalance: submitted=%d finished=%d want %d",
					st.Graph.Submitted, st.Graph.Finished, total)
			}
			if rdy := rt.be.(*nativeBackend).sched.Ready(); rdy != 0 {
				t.Fatalf("%d ready tasks stranded after drain", rdy)
			}
		})
	}
}

// TestNativeBlockingModeStress repeats a smaller mixed workload in Blocking
// wait mode, covering the idle-gate park/wake paths (workers sleeping on
// the gate while submitters race the wake sequence).
func TestNativeBlockingModeStress(t *testing.T) {
	const (
		nGoroutines = 4
		chainLen    = 100
	)
	rt := New(Workers(4), Wait(Blocking))
	defer rt.Shutdown()

	chains := make([]*int64, nGoroutines)
	for i := range chains {
		chains[i] = new(int64)
	}
	var wg sync.WaitGroup
	for gi := 0; gi < nGoroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			c := chains[gi]
			for k := 0; k < chainLen; k++ {
				k := k
				rt.Task(func(*TC) {
					if *c != int64(k) {
						t.Errorf("goroutine %d chain saw %d at step %d", gi, *c, k)
					}
					*c++
				}, InOut(c))
			}
			rt.Taskwait()
		}(gi)
	}
	wg.Wait()
	rt.Taskwait()
	for gi := range chains {
		if *chains[gi] != chainLen {
			t.Fatalf("goroutine %d chain ended at %d, want %d", gi, *chains[gi], chainLen)
		}
	}
	st := rt.Stats()
	if st.Graph.Submitted != st.Graph.Finished {
		t.Fatalf("graph imbalance: %+v", st.Graph)
	}
}
