package ompss_test

// Concurrent-session isolation fuzz: N seeded fuzz programs (the same
// generator the schedule fuzz uses) run simultaneously on ONE runtime, each
// inside its own session, alongside a poison session whose head task fails
// (triggering a SkipDependents cascade) and a session cancelled mid-flight.
// The isolation contract under test: a session's failure or cancellation
// must never skip, reorder, or corrupt another session's tasks. Each
// healthy program must drain to the sequential model with zero
// happens-before violations (plain-load checks — CI's race job amplifies
// any missing edge into a detected data race) and close with
// Skipped == Failed == 0; the poison and cancelled sessions must account
// for exactly their own casualties.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ompssgo/machine"
	"ompssgo/ompss"
)

// sessionFuzzSchedules is the native schedule sweep for the concurrent leg:
// worker counts around the contention knee crossed with both wait modes
// (Blocking parks idle workers — the server's configuration — and Polling
// spins; the session Close drain takes a different path in each).
func sessionFuzzSchedules() []fuzzSchedule {
	var out []fuzzSchedule
	for _, w := range []int{1, 2, 4} {
		for _, wait := range []ompss.WaitMode{ompss.Polling, ompss.Blocking} {
			out = append(out, fuzzSchedule{
				name:   fmt.Sprintf("native/w%d-%s", w, wait),
				native: true,
				opts:   []ompss.Option{ompss.Workers(w), ompss.Wait(wait)},
			})
		}
	}
	return out
}

// runPoisonSession drives one session through a deliberate failure cascade:
// a failing head write and nDeps dependent InOut tasks that must all skip.
// The drain goes through TaskwaitCtx so the head is guaranteed to have RUN
// and failed (Close alone could cancel it before execution) and the round's
// failure is captured. Returns the session's skipped count and that error.
func runPoisonSession(rt *ompss.Runtime, nDeps int) (uint64, error) {
	s := rt.NewSession(ompss.Tenant(1))
	var cell int
	s.Go(func(*ompss.TC) error { return fmt.Errorf("poison head") }, ompss.InOut(&cell))
	for i := 0; i < nDeps; i++ {
		s.Task(func(*ompss.TC) { cell++ }, ompss.InOut(&cell))
	}
	err := s.TaskwaitCtx(context.Background())
	skipped := s.Stats().Skipped
	if cerr := s.Close(); cerr != nil {
		return skipped, fmt.Errorf("clean close after consumed round: %w", cerr)
	}
	return skipped, err
}

// runCancelledSession drives one session cancelled mid-flight: a head task
// gated on a channel that only opens after Cancel fires, with an nDeps-long
// InOut chain queued behind it. The chain must skip entirely; the head
// itself races the cancellation (skips if no thread had picked it up yet),
// so the skipped count is nDeps or nDeps+1. Returns it plus the Close
// error.
func runCancelledSession(rt *ompss.Runtime, nDeps int) (uint64, error) {
	s := rt.NewSession()
	var cell int
	release := make(chan struct{})
	s.Task(func(*ompss.TC) { <-release }, ompss.InOut(&cell))
	for i := 0; i < nDeps; i++ {
		s.Task(func(*ompss.TC) { cell++ }, ompss.InOut(&cell))
	}
	s.Cancel(context.Canceled)
	close(release)
	err := s.TaskwaitCtx(context.Background())
	skipped := s.Stats().Skipped
	if cerr := s.Close(); cerr != nil {
		return skipped, fmt.Errorf("clean close after consumed round: %w", cerr)
	}
	return skipped, err
}

// TestSessionFuzzNative runs the concurrent-session battery on the native
// backend: per schedule, four healthy fuzz sessions driven from their own
// goroutines (the server's request pattern) race against a poison session
// and a cancelled session on the same runtime.
func TestSessionFuzzNative(t *testing.T) {
	const healthy = 4
	const casualties = 6
	seeds := []int64{1, 0x5eed}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, baseSeed := range seeds {
		for _, sc := range sessionFuzzSchedules() {
			t.Run(fmt.Sprintf("seed%d/%s", baseSeed, sc.name), func(t *testing.T) {
				rt := ompss.New(sc.opts...)
				defer rt.Shutdown()

				var wg sync.WaitGroup
				for i := 0; i < healthy; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						p := genProg(baseSeed+int64(i)*101, 1<<30)
						cells := newFuzzCells(p.nKeys)
						s := rt.NewSession(ompss.Tenant(i % 3))
						cells.run(p, s)
						cells.checkFinal(p)
						st := s.Stats()
						if err := s.Close(); err != nil {
							t.Errorf("healthy session %d: Close = %v", i, err)
						}
						cells.mu.Lock()
						violations := cells.violations
						cells.mu.Unlock()
						if len(violations) > 0 {
							t.Errorf("healthy session %d (seed %d): %d violations; first: %s",
								i, p.seed, len(violations), violations[0])
						}
						if st.Skipped != 0 || st.Failed != 0 {
							t.Errorf("healthy session %d: skipped=%d failed=%d — foreign cascade leaked in",
								i, st.Skipped, st.Failed)
						}
						if st.Finished != uint64(p.nTasks) {
							t.Errorf("healthy session %d: finished %d of %d tasks",
								i, st.Finished, p.nTasks)
						}
					}()
				}
				wg.Add(2)
				go func() {
					defer wg.Done()
					skipped, err := runPoisonSession(rt, casualties)
					if skipped != casualties {
						t.Errorf("poison session skipped %d, want %d", skipped, casualties)
					}
					if err == nil {
						t.Error("poison session Close = nil, want its own failure")
					}
				}()
				go func() {
					defer wg.Done()
					skipped, err := runCancelledSession(rt, casualties)
					if skipped < casualties || skipped > casualties+1 {
						t.Errorf("cancelled session skipped %d, want %d or %d",
							skipped, casualties, casualties+1)
					}
					if err == nil {
						t.Error("cancelled session Close = nil, want the cancel cause")
					}
				}()
				wg.Wait()
			})
		}
	}
}

// TestSessionFuzzSim runs the same isolation contract on the simulated
// backend. Virtual threads cannot be driven from real goroutines, so the
// master thread interleaves group submissions round-robin across three
// healthy sessions plus a poison session — the submission orders interleave
// in the dependence tracker exactly as concurrent clients' would — then
// drains and closes each.
func TestSessionFuzzSim(t *testing.T) {
	const healthy = 3
	const casualties = 6
	type result struct {
		violations []string
		stats      ompss.SessionStats
		nTasks     int
		closeErr   error
	}
	var results [healthy]result
	var poisonSkipped uint64
	var poisonErr, poisonClose error

	for _, cores := range []int{1, 4} {
		_, err := ompss.RunSim(machine.Paper(cores), func(rt *ompss.Runtime) {
			var progs [healthy]*fuzzProg
			var cells [healthy]*fuzzCells
			var sess [healthy]*ompss.Session
			var keys [healthy][]*ompss.Datum
			var next [healthy]int
			maxGroups := 0
			for i := 0; i < healthy; i++ {
				progs[i] = genProg(int64(7000+i*13), 1<<30)
				cells[i] = newFuzzCells(progs[i].nKeys)
				sess[i] = rt.NewSession(ompss.Tenant(i % 3))
				keys[i] = cells[i].registerKeys(progs[i], sess[i])
				if len(progs[i].groups) > maxGroups {
					maxGroups = len(progs[i].groups)
				}
			}
			poison := rt.NewSession()
			var pCell int
			poison.Go(func(*ompss.TC) error { return fmt.Errorf("poison head") },
				ompss.InOut(&pCell))

			for g := 0; g < maxGroups; g++ {
				for i := 0; i < healthy; i++ {
					if g < len(progs[i].groups) {
						next[i] = cells[i].submitGroup(progs[i].groups[g], next[i], sess[i], keys[i])
					}
				}
				// Drip the poison chain between healthy groups so the skip
				// cascade propagates while foreign submissions are in flight.
				if g < casualties {
					poison.Task(func(*ompss.TC) { pCell++ }, ompss.InOut(&pCell))
				}
			}
			for i := 0; i < healthy; i++ {
				sess[i].Taskwait()
				cells[i].checkFinal(progs[i])
				results[i].stats = sess[i].Stats()
				results[i].nTasks = progs[i].nTasks
				results[i].closeErr = sess[i].Close()
				cells[i].mu.Lock()
				results[i].violations = cells[i].violations
				cells[i].mu.Unlock()
			}
			poisonErr = poison.TaskwaitCtx(context.Background())
			poisonSkipped = poison.Stats().Skipped
			poisonClose = poison.Close()
		})
		if err != nil {
			t.Fatalf("cores=%d: RunSim: %v", cores, err)
		}
		for i, r := range results {
			if len(r.violations) > 0 {
				t.Fatalf("cores=%d healthy session %d: %d violations; first: %s",
					cores, i, len(r.violations), r.violations[0])
			}
			if r.closeErr != nil {
				t.Fatalf("cores=%d healthy session %d: Close = %v", cores, i, r.closeErr)
			}
			if r.stats.Skipped != 0 || r.stats.Failed != 0 {
				t.Fatalf("cores=%d healthy session %d: skipped=%d failed=%d — poison leaked in",
					cores, i, r.stats.Skipped, r.stats.Failed)
			}
			if r.stats.Finished != uint64(r.nTasks) {
				t.Fatalf("cores=%d healthy session %d: finished %d of %d",
					cores, i, r.stats.Finished, r.nTasks)
			}
		}
		if poisonSkipped != casualties {
			t.Fatalf("cores=%d: poison session skipped %d, want %d", cores, poisonSkipped, casualties)
		}
		if poisonErr == nil {
			t.Fatalf("cores=%d: poison session drained without reporting its failure", cores)
		}
		if poisonClose != nil {
			t.Fatalf("cores=%d: poison Close after consumed round = %v, want nil", cores, poisonClose)
		}
	}
}
