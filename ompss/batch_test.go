package ompss_test

import (
	"errors"
	"sync/atomic"
	"testing"

	"ompssgo/machine"
	"ompssgo/ompss"
)

var errBatchBoom = errors.New("boom")

// TestBatchChainNative checks that intra-batch dependences resolve in spawn
// order on the native runtime: an InOut chain submitted as one batch still
// executes strictly sequentially.
func TestBatchChainNative(t *testing.T) {
	rt := ompss.New(ompss.Workers(4))
	defer rt.Shutdown()
	x := rt.Register(new(int))
	var order [8]int32
	var next atomic.Int32
	b := rt.Batch()
	for i := 0; i < len(order); i++ {
		i := i
		b.Task(func(*ompss.TC) { order[i] = next.Add(1) }, x.AsInOut())
	}
	if b.Len() != len(order) {
		t.Fatalf("batch length = %d, want %d", b.Len(), len(order))
	}
	hs := b.Submit()
	if len(hs) != len(order) {
		t.Fatalf("handles = %d, want %d", len(hs), len(order))
	}
	rt.Taskwait()
	for i, v := range order {
		if int(v) != i+1 {
			t.Fatalf("chain order %v, want sequential", order)
		}
	}
	for _, h := range hs {
		select {
		case <-h.Done():
		default:
			t.Fatal("handle not completed after taskwait")
		}
		if h.Err() != nil {
			t.Fatalf("unexpected task error: %v", h.Err())
		}
	}
}

// TestBatchHandleLiveBeforeSubmit checks the future handed out before the
// flush is live: waiting on it from another goroutine unblocks once the
// batch is submitted and the task runs.
func TestBatchHandleLiveBeforeSubmit(t *testing.T) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()
	b := rt.Batch()
	h := b.Task(func(*ompss.TC) {})
	waited := make(chan struct{})
	go func() {
		<-h.Done()
		close(waited)
	}()
	if h.TaskID() != 0 {
		t.Fatal("unsubmitted batch task should not have a graph ID yet")
	}
	b.Submit()
	rt.Taskwait()
	<-waited
}

// TestBatchMixedPlacements exercises priority, affinity, and plain tasks in
// one batch on both backends.
func TestBatchMixedPlacements(t *testing.T) {
	var ran atomic.Int32
	program := func(rt *ompss.Runtime) {
		d := rt.Register(new(int))
		hs := rt.SubmitBatch(func(b *ompss.Batch) {
			b.Task(func(*ompss.TC) { ran.Add(1) })
			b.Task(func(*ompss.TC) { ran.Add(1) }, ompss.Priority(2))
			b.Task(func(*ompss.TC) { ran.Add(1) }, ompss.Affinity(d))
			b.Task(func(*ompss.TC) { ran.Add(1) }, d.AsInOut(), ompss.Affinity(d), ompss.Priority(1))
		})
		if len(hs) != 4 {
			panic("want 4 handles")
		}
		rt.Taskwait()
	}

	ran.Store(0)
	rt := ompss.New(ompss.Workers(3), ompss.Domains(2))
	program(rt)
	rt.Shutdown()
	if ran.Load() != 4 {
		t.Fatalf("native ran %d tasks, want 4", ran.Load())
	}

	ran.Store(0)
	if _, err := ompss.RunSim(machine.Paper(4), program); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if ran.Load() != 4 {
		t.Fatalf("sim ran %d tasks, want 4", ran.Load())
	}
}

// TestBatchInlineTasksRunImmediately checks If(false) tasks inside a batch
// keep OmpSs's undeferred semantics: they run at spawn, not at flush.
func TestBatchInlineTasksRunImmediately(t *testing.T) {
	rt := ompss.New()
	defer rt.Shutdown()
	b := rt.Batch()
	ran := false
	h := b.Task(func(*ompss.TC) { ran = true }, ompss.If(false))
	if !ran {
		t.Fatal("If(false) task must run inline at spawn even inside a batch")
	}
	if b.Len() != 0 {
		t.Fatal("inline task must not be accumulated")
	}
	select {
	case <-h.Done():
	default:
		t.Fatal("inline handle must be pre-completed")
	}
}

// TestBatchErrorPropagation checks failure propagation across an intra-batch
// dependence edge under the default SkipDependents policy.
func TestBatchErrorPropagation(t *testing.T) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()
	d := rt.Register(new(int))
	var hs []*ompss.Handle
	b := rt.Batch()
	hs = append(hs, b.Go(func(*ompss.TC) error { return errBatchBoom }, d.AsOut()))
	hs = append(hs, b.Go(func(*ompss.TC) error { return nil }, d.AsIn()))
	b.Submit()
	rt.Taskwait()
	if hs[0].Err() != errBatchBoom {
		t.Fatalf("producer error = %v, want boom", hs[0].Err())
	}
	if err := hs[1].Err(); !errors.Is(err, ompss.ErrSkipped) {
		t.Fatalf("consumer error = %v, want a skip wrapping the producer failure", err)
	}
}

// TestSubmitBatchEmptyIsNoop ensures flushing an empty batch is safe.
func TestSubmitBatchEmptyIsNoop(t *testing.T) {
	rt := ompss.New()
	defer rt.Shutdown()
	if hs := rt.Batch().Submit(); hs != nil {
		t.Fatalf("empty flush returned %d handles", len(hs))
	}
	rt.Taskwait()
}
