package ompss

import (
	"testing"
	"time"

	"ompssgo/machine"
)

func TestNativeRegionBlockedStencil(t *testing.T) {
	// Blocked in-place update: each block writes its own section and reads
	// its left neighbour's — disjoint writes run in parallel, overlapping
	// read/write pairs chain. No manual per-block keys needed.
	rt := New(Workers(4))
	defer rt.Shutdown()
	const n, bs = 64, 16
	data := make([]int, n)
	base := &data[0]
	for b := 0; b < n/bs; b++ {
		lo, hi := int64(b*bs), int64((b+1)*bs)
		rt.Task(func(*TC) {
			for i := lo; i < hi; i++ {
				data[i] = int(i)
			}
		}, OutRegion(base, lo, hi))
	}
	// Second wave: block b reads [lo-1, hi) — one element of the previous
	// block — forcing a left-to-right chain of pairwise dependences.
	for b := 0; b < n/bs; b++ {
		lo, hi := int64(b*bs), int64((b+1)*bs)
		rlo := lo - 1
		if rlo < 0 {
			rlo = 0
		}
		rt.Task(func(*TC) {
			left := 0
			if lo > 0 {
				left = data[lo-1]
			}
			for i := lo; i < hi; i++ {
				data[i] += left
			}
		}, InRegion(base, rlo, lo+1), InOutRegion(base, lo, hi))
	}
	rt.Taskwait()
	// Verify against the sequential recurrence.
	want := make([]int, n)
	for i := range want {
		want[i] = i
	}
	for b := 0; b < n/bs; b++ {
		lo := b * bs
		left := 0
		if lo > 0 {
			left = want[lo-1]
		}
		for i := lo; i < lo+bs; i++ {
			want[i] += left
		}
	}
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("data[%d] = %d, want %d", i, data[i], want[i])
		}
	}
}

func TestNativeTaskwaitOnRegion(t *testing.T) {
	rt := New(Workers(2))
	defer rt.Shutdown()
	data := make([]int, 32)
	base := &data[0]
	rt.Task(func(*TC) {
		time.Sleep(2 * time.Millisecond)
		for i := 0; i < 16; i++ {
			data[i] = 1
		}
	}, OutRegion(base, 0, 16))
	rt.Task(func(*TC) {
		for i := 16; i < 32; i++ {
			data[i] = 2
		}
	}, OutRegion(base, 16, 32))
	// Waiting on the second half must not require the slow first half.
	rt.TaskwaitOn(RegionKey(base, 16, 32))
	if data[31] != 2 {
		t.Fatal("taskwait on region returned before its writer finished")
	}
	rt.TaskwaitOn(RegionKey(base, 0, 32)) // now both
	if data[0] != 1 {
		t.Fatal("whole-array region wait missed the first writer")
	}
}

func TestSimRegionsParallelize(t *testing.T) {
	// Disjoint sections on 8 cores should overlap; a single whole-array
	// key would serialize the same tasks.
	sections := func(disjoint bool) time.Duration {
		st, err := RunSim(machine.Paper(8), func(rt *Runtime) {
			data := make([]int, 8*1024)
			base := &data[0]
			for b := 0; b < 8; b++ {
				lo, hi := int64(b*1024), int64((b+1)*1024)
				if !disjoint {
					lo, hi = 0, 8*1024 // everyone claims the whole array
				}
				b := b
				rt.Task(func(*TC) { data[b*1024] = b },
					OutRegion(base, lo, hi), Cost(500*time.Microsecond))
			}
			rt.Taskwait()
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Makespan
	}
	par, serial := sections(true), sections(false)
	if float64(serial)/float64(par) < 4 {
		t.Fatalf("disjoint sections should parallelize: %v vs %v", par, serial)
	}
}
