package ompss

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ompssgo/machine"
)

func TestTaskLoopCoversIterationSpace(t *testing.T) {
	rt := New(Workers(4))
	defer rt.Shutdown()
	var hit [103]int32
	rt.TaskLoop(103, 10, func(_ *TC, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hit[i], 1)
		}
	})
	rt.Taskwait()
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("iteration %d executed %d times", i, h)
		}
	}
	st := rt.Stats()
	if st.Graph.Finished != 11 {
		t.Fatalf("chunk tasks = %d, want 11", st.Graph.Finished)
	}
}

func TestTaskLoopDegenerate(t *testing.T) {
	rt := New(Workers(2))
	defer rt.Shutdown()
	ran := int32(0)
	rt.TaskLoop(0, 10, func(*TC, int, int) { atomic.AddInt32(&ran, 1) })
	rt.TaskLoop(5, 0, func(_ *TC, lo, hi int) { atomic.AddInt32(&ran, int32(hi-lo)) })
	rt.Taskwait()
	if ran != 5 {
		t.Fatalf("ran = %d, want 5 (chunk<1 clamps to 1)", ran)
	}
}

func TestTaskLoopSimParallelizes(t *testing.T) {
	measure := func(cores int) time.Duration {
		st, err := RunSim(machine.Paper(cores), func(rt *Runtime) {
			rt.TaskLoop(32, 1, func(*TC, int, int) {}, Cost(time.Millisecond))
			rt.Taskwait()
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Makespan
	}
	if sp := float64(measure(1)) / float64(measure(8)); sp < 5 {
		t.Fatalf("taskloop speedup %.1f on 8 cores", sp)
	}
}

func TestWriteTimeline(t *testing.T) {
	tr := NewTracer()
	rt := New(Workers(2), Trace(tr))
	x := new(int)
	rt.Task(func(*TC) { *x = 1 }, Out(x), Label("produce"))
	rt.Task(func(*TC) { _ = *x }, In(x), Label("consume"))
	rt.Taskwait()
	rt.Shutdown()
	var sb strings.Builder
	if err := tr.WriteTimeline(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline rows = %d, want header + 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "task,label,lane") {
		t.Fatalf("missing header: %q", lines[0])
	}
	if !strings.Contains(out, `"produce"`) || !strings.Contains(out, `"consume"`) {
		t.Fatalf("labels missing:\n%s", out)
	}
}
