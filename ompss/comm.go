package ompss

import "sync"

// commTable is the commutative per-key lock table shared by both backends
// (the mutex type M is sync.Mutex natively, vm.Mutex in simulation). Each
// key gets a lock with a rank assigned at first use; resolve returns a key
// set's locks deduplicated and sorted by ascending rank. Acquiring
// multi-key lock sets in rank order is the deadlock-freedom invariant:
// tasks declaring the same keys in opposite clause orders still lock them
// identically.
type commTable[M any] struct {
	mu  sync.Mutex // guards the map and rank counter, never held while bodies run
	m   map[any]*commEntry[M]
	seq uint64
}

// commEntry is one key's lock with its acquisition rank.
type commEntry[M any] struct {
	rank uint64
	mu   M
}

// resolve returns the locks of keys (creating on first use), deduplicated
// and sorted by rank. Safe from any goroutine.
func (t *commTable[M]) resolve(keys []any) []*commEntry[M] {
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[any]*commEntry[M])
	}
	locks := make([]*commEntry[M], 0, len(keys))
	for _, k := range keys {
		e := t.m[k]
		if e == nil {
			t.seq++
			e = &commEntry[M]{rank: t.seq}
			t.m[k] = e
		}
		locks = append(locks, e)
	}
	t.mu.Unlock()
	// Insertion sort: commutative key sets are 1-3 entries, not worth
	// sort.Slice's reflection.
	for i := 1; i < len(locks); i++ {
		for j := i; j > 0 && locks[j].rank < locks[j-1].rank; j-- {
			locks[j], locks[j-1] = locks[j-1], locks[j]
		}
	}
	// Drop duplicate keys (the same lock listed twice would self-deadlock).
	out := locks[:0]
	for i, l := range locks {
		if i == 0 || locks[i-1] != l {
			out = append(out, l)
		}
	}
	return out
}
