package ompss

import (
	"errors"
	"testing"
	"time"

	"ompssgo/machine"
)

func TestCommutativeMutualExclusion(t *testing.T) {
	// Unsynchronized counter updates under Commutative must not race: the
	// runtime's per-key lock serializes the bodies.
	rt := New(Workers(4))
	defer rt.Shutdown()
	counter := 0
	for i := 0; i < 200; i++ {
		rt.Task(func(*TC) { counter++ }, Commutative(&counter))
	}
	rt.Taskwait()
	if counter != 200 {
		t.Fatalf("commutative counter = %d, want 200", counter)
	}
}

func TestCommutativeOrdersAgainstReadersAndWriters(t *testing.T) {
	rt := New(Workers(4))
	defer rt.Shutdown()
	x := new(int)
	rt.Task(func(*TC) { *x = 100 }, Out(x))
	for i := 0; i < 8; i++ {
		rt.Task(func(*TC) { *x++ }, Commutative(x))
	}
	got := new(int)
	rt.Task(func(*TC) { *got = *x }, In(x), Out(got))
	rt.Taskwait()
	if *got != 108 {
		t.Fatalf("reader after commutatives saw %d, want 108", *got)
	}
}

func TestCommutativeSimOverlapsDistinctKeys(t *testing.T) {
	// Commutative tasks on DIFFERENT keys must run in parallel; on the
	// SAME key they serialize. Compare makespans.
	run := func(sameKey bool) time.Duration {
		st, err := RunSim(machine.Paper(8), func(rt *Runtime) {
			keys := make([]int, 8)
			for i := 0; i < 8; i++ {
				k := &keys[0]
				if !sameKey {
					k = &keys[i]
				}
				rt.Task(func(tc *TC) { tc.Compute(time.Millisecond) },
					Commutative(k), Cost(time.Microsecond))
			}
			rt.Taskwait()
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Makespan
	}
	same, distinct := run(true), run(false)
	if float64(same)/float64(distinct) < 4 {
		t.Fatalf("same-key commutatives should serialize: same=%v distinct=%v", same, distinct)
	}
}

func TestTaskPanicResurfacesAtTaskwait(t *testing.T) {
	rt := New(Workers(2))
	var sibling int
	x := new(int)
	rt.Task(func(*TC) { panic("boom") }, Label("bad"), Out(x))
	rt.Task(func(*TC) { sibling = 1 }, In(x)) // dependent of the panicker
	defer func() {
		r := recover()
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("expected *TaskPanic, got %v", r)
		}
		if tp.Label != "bad" || tp.Value != "boom" {
			t.Fatalf("panic details: %+v", tp)
		}
		if sibling != 1 {
			t.Fatal("dependent task should still run (graph must drain)")
		}
		var err error = tp
		var asPanic *TaskPanic
		if !errors.As(err, &asPanic) {
			t.Fatal("TaskPanic should satisfy errors.As")
		}
	}()
	rt.Taskwait()
	t.Fatal("Taskwait should have panicked")
}

func TestTaskPanicSurfacesAsSimError(t *testing.T) {
	_, err := RunSim(machine.Paper(4), func(rt *Runtime) {
		rt.Task(func(*TC) { panic("sim-boom") }, Label("bad"))
		// No explicit taskwait: the implicit shutdown drain captures it.
	})
	var tp *TaskPanic
	if !errors.As(err, &tp) {
		t.Fatalf("RunSim error = %v, want *TaskPanic", err)
	}
	if tp.Value != "sim-boom" {
		t.Fatalf("panic value %v", tp.Value)
	}
}
