package ompss

import (
	"errors"
	"testing"
	"time"

	"ompssgo/machine"
)

func TestCommutativeMutualExclusion(t *testing.T) {
	// Unsynchronized counter updates under Commutative must not race: the
	// runtime's per-key lock serializes the bodies.
	rt := New(Workers(4))
	defer rt.Shutdown()
	counter := 0
	for i := 0; i < 200; i++ {
		rt.Task(func(*TC) { counter++ }, Commutative(&counter))
	}
	rt.Taskwait()
	if counter != 200 {
		t.Fatalf("commutative counter = %d, want 200", counter)
	}
}

func TestCommutativeOrdersAgainstReadersAndWriters(t *testing.T) {
	rt := New(Workers(4))
	defer rt.Shutdown()
	x := new(int)
	rt.Task(func(*TC) { *x = 100 }, Out(x))
	for i := 0; i < 8; i++ {
		rt.Task(func(*TC) { *x++ }, Commutative(x))
	}
	got := new(int)
	rt.Task(func(*TC) { *got = *x }, In(x), Out(got))
	rt.Taskwait()
	if *got != 108 {
		t.Fatalf("reader after commutatives saw %d, want 108", *got)
	}
}

func TestCommutativeSimOverlapsDistinctKeys(t *testing.T) {
	// Commutative tasks on DIFFERENT keys must run in parallel; on the
	// SAME key they serialize. Compare makespans.
	run := func(sameKey bool) time.Duration {
		st, err := RunSim(machine.Paper(8), func(rt *Runtime) {
			keys := make([]int, 8)
			for i := 0; i < 8; i++ {
				k := &keys[0]
				if !sameKey {
					k = &keys[i]
				}
				rt.Task(func(tc *TC) { tc.Compute(time.Millisecond) },
					Commutative(k), Cost(time.Microsecond))
			}
			rt.Taskwait()
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Makespan
	}
	same, distinct := run(true), run(false)
	if float64(same)/float64(distinct) < 4 {
		t.Fatalf("same-key commutatives should serialize: same=%v distinct=%v", same, distinct)
	}
}

func TestTaskPanicBecomesHandleError(t *testing.T) {
	rt := New(Workers(2))
	defer rt.Shutdown()
	x := new(int)
	h := rt.Task(func(*TC) { panic("boom") }, Label("bad"), Out(x))
	dep := rt.Task(func(*TC) {}, In(x)) // dependent of the panicker
	rt.Taskwait()
	var tp *TaskPanic
	if err := h.Err(); !errors.As(err, &tp) {
		t.Fatalf("Handle.Err = %v, want *TaskPanic", err)
	}
	if tp.Label != "bad" || tp.Value != "boom" {
		t.Fatalf("panic details: %+v", tp)
	}
	// Default SkipDependents policy: the dependent is released without
	// running, its error wraps the panic, and the graph drains.
	if err := dep.Err(); !errors.Is(err, ErrSkipped) || !errors.As(err, &tp) {
		t.Fatalf("dependent err = %v, want skip wrapping the panic", err)
	}
	if err := rt.Err(); !errors.As(err, &tp) {
		t.Fatalf("Runtime.Err = %v, want the panic", err)
	}
}

func TestUnobservedPanicResurfacesAtShutdown(t *testing.T) {
	// The safety valve: a program that never consults the error surface
	// still crashes loudly when a task panicked.
	rt := New(Workers(2))
	rt.Task(func(*TC) { panic("boom") }, Label("bad"))
	rt.Taskwait()
	defer func() {
		tp, ok := recover().(*TaskPanic)
		if !ok || tp.Value != "boom" {
			t.Fatalf("Shutdown should re-panic with *TaskPanic, got %v", tp)
		}
	}()
	rt.Shutdown()
	t.Fatal("Shutdown should have panicked")
}

func TestCommutativeOppositeOrderNoDeadlock(t *testing.T) {
	// Regression: two tasks declaring the same two commutative keys in
	// opposite clause orders used to acquire the per-key locks in
	// declaration order — a classic ABBA deadlock under concurrency. The
	// runtime now sorts acquisition by a stable per-key rank, so opposed
	// declaration orders must run to completion.
	rt := New(Workers(4))
	defer rt.Shutdown()
	x, y := new(int), new(int)
	const iters = 300
	for i := 0; i < iters; i++ {
		rt.Task(func(*TC) { *x++; *y++ }, Commutative(x, y))
		rt.Task(func(*TC) { *y++; *x++ }, Commutative(y, x))
	}
	rt.Taskwait()
	if *x != 2*iters || *y != 2*iters {
		t.Fatalf("counters x=%d y=%d, want %d each", *x, *y, 2*iters)
	}
}

func TestTaskPanicSurfacesAsSimError(t *testing.T) {
	_, err := RunSim(machine.Paper(4), func(rt *Runtime) {
		rt.Task(func(*TC) { panic("sim-boom") }, Label("bad"))
		// No explicit taskwait: the implicit shutdown drain captures it.
	})
	var tp *TaskPanic
	if !errors.As(err, &tp) {
		t.Fatalf("RunSim error = %v, want *TaskPanic", err)
	}
	if tp.Value != "sim-boom" {
		t.Fatalf("panic value %v", tp.Value)
	}
}
