package ompss

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ompssgo/machine"
)

// --- Datum handles -----------------------------------------------------------

func TestDatumChainOrdering(t *testing.T) {
	// A RAW chain declared purely through registered handles must
	// serialize exactly like raw keys.
	rt := New(Workers(4))
	defer rt.Shutdown()
	x := rt.Register(new(int))
	val := 0
	for i := 0; i < 50; i++ {
		i := i
		rt.Task(func(*TC) {
			if val != i {
				t.Errorf("task %d saw val=%d", i, val)
			}
			val++
		}, InOut(x))
	}
	rt.Taskwait()
	if val != 50 {
		t.Fatalf("val=%d, want 50", val)
	}
}

func TestDatumAndRawKeyInterop(t *testing.T) {
	// The compatibility layer: a handle and its raw key must resolve to
	// the same dependence record, so mixed declarations stay ordered.
	rt := New(Workers(4))
	defer rt.Shutdown()
	key := new(int)
	d := rt.Register(key)
	order := make([]int, 0, 3)
	rt.Task(func(*TC) { order = append(order, 1) }, Out(d))     // handle writer
	rt.Task(func(*TC) { order = append(order, 2) }, InOut(key)) // raw-key updater
	rt.Task(func(*TC) { order = append(order, 3) }, In(d))      // handle reader
	rt.Taskwait()
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Fatalf("mixed handle/raw-key order = %v, want [1 2 3]", order)
	}
}

func TestRegisterIsIdempotent(t *testing.T) {
	rt := New(Workers(1))
	defer rt.Shutdown()
	key := new(int)
	a, b := rt.Register(key), rt.Register(key)
	ran := 0
	rt.Task(func(*TC) { ran++ }, Out(a))
	w2 := rt.Task(func(*TC) { ran++ }, Out(b))
	rt.Taskwait()
	if ran != 2 {
		t.Fatalf("ran=%d", ran)
	}
	if w2.Err() != nil {
		t.Fatal(w2.Err())
	}
	// Registering a handle returns it unchanged.
	if rt.Register(a) != a {
		t.Fatal("Register(*Datum) should be identity")
	}
}

func TestRegionDatum(t *testing.T) {
	rt := New(Workers(4))
	defer rt.Shutdown()
	data := make([]int, 100)
	base := &data[0]
	left := rt.RegisterRegion(base, 0, 50)
	right := rt.RegisterRegion(base, 50, 100)
	whole := rt.RegisterRegion(base, 0, 100)
	rt.Task(func(*TC) {
		for i := 0; i < 50; i++ {
			data[i] = 1
		}
	}, Out(left))
	rt.Task(func(*TC) {
		for i := 50; i < 100; i++ {
			data[i] = 2
		}
	}, Out(right))
	sum := 0
	rt.Task(func(*TC) {
		for _, v := range data {
			sum += v
		}
	}, In(whole))
	rt.Taskwait()
	if sum != 150 {
		t.Fatalf("sum=%d, want 150", sum)
	}
	if !left.IsRegion() || left.Key() == nil {
		t.Fatal("region handle should report IsRegion and carry a key")
	}
	// Region handles interop with raw region clauses on the same base.
	got := 0
	rt.Task(func(*TC) { data[0] = 9 }, OutRegion(base, 0, 10))
	rt.Task(func(*TC) { got = data[0] }, In(left))
	rt.Taskwait()
	if got != 9 {
		t.Fatalf("raw-region/handle interop saw %d, want 9", got)
	}
}

func TestCrossRuntimeHandleFallsBackToKey(t *testing.T) {
	// A handle registered on one runtime used in clauses on another must
	// degrade to the key-based compatibility path (same records as raw
	// keys on the second runtime), not inject the first runtime's records.
	rt1 := New(Workers(1))
	defer rt1.Shutdown()
	rt2 := New(Workers(2))
	defer rt2.Shutdown()
	key := new(int)
	foreign := rt1.Register(key)
	order := make([]int, 0, 2)
	rt2.Task(func(*TC) { order = append(order, 1) }, Out(foreign)) // foreign handle
	rt2.Task(func(*TC) { order = append(order, 2) }, In(key))      // raw key
	rt2.Taskwait()
	if fmt.Sprint(order) != "[1 2]" {
		t.Fatalf("foreign handle did not order against raw key: %v", order)
	}
	// Re-registering a foreign handle binds it to this runtime.
	local := rt2.Register(foreign)
	if local == foreign {
		t.Fatal("foreign handle should be re-registered, not passed through")
	}
	if rt2.Register(local) != local {
		t.Fatal("same-runtime re-registration should be identity")
	}
}

func TestTaskwaitOnDatum(t *testing.T) {
	rt := New(Workers(2))
	defer rt.Shutdown()
	d := rt.Register(new(int))
	done := false
	rt.Task(func(*TC) { time.Sleep(time.Millisecond); done = true }, Out(d))
	rt.TaskwaitOn(d)
	if !done {
		t.Fatal("TaskwaitOn(datum) returned before the writer finished")
	}
	rt.Taskwait()
}

// --- Handles and error propagation ------------------------------------------

func TestGoErrorOnHandle(t *testing.T) {
	rt := New(Workers(2))
	defer rt.Shutdown()
	boom := errors.New("boom")
	h := rt.Go(func(*TC) error { return boom })
	ok := rt.Go(func(*TC) error { return nil })
	rt.Taskwait()
	if !errors.Is(h.Err(), boom) {
		t.Fatalf("Handle.Err = %v, want boom", h.Err())
	}
	if ok.Err() != nil {
		t.Fatalf("successful task Err = %v", ok.Err())
	}
	select {
	case <-h.Done():
	default:
		t.Fatal("Done should be closed after Taskwait")
	}
}

func TestDiamondErrorPropagation(t *testing.T) {
	// top fails; under SkipDependents both arms and the join are skipped,
	// each wrapping the root cause.
	rt := New(Workers(4))
	defer rt.Shutdown()
	x, y, z := new(int), new(int), new(int)
	boom := errors.New("boom")
	var armRan, joinRan atomic.Int32
	top := rt.Go(func(*TC) error { return boom }, Label("top"), Out(x))
	l := rt.Task(func(*TC) { armRan.Add(1) }, Label("l"), In(x), Out(y))
	r := rt.Task(func(*TC) { armRan.Add(1) }, Label("r"), In(x), Out(z))
	join := rt.Task(func(*TC) { joinRan.Add(1) }, Label("join"), In(y), In(z))
	rt.Taskwait()
	if !errors.Is(top.Err(), boom) {
		t.Fatalf("top err = %v", top.Err())
	}
	for name, h := range map[string]*Handle{"l": l, "r": r, "join": join} {
		err := h.Err()
		if !errors.Is(err, ErrSkipped) {
			t.Fatalf("%s err = %v, want skipped", name, err)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("%s err = %v, should unwrap to the root cause", name, err)
		}
	}
	if armRan.Load() != 0 || joinRan.Load() != 0 {
		t.Fatalf("skipped bodies ran: arms=%d join=%d", armRan.Load(), joinRan.Load())
	}
	st := rt.Stats()
	if st.Graph.Skipped != 3 || st.Graph.Failed != 4 {
		t.Fatalf("stats: skipped=%d failed=%d, want 3/4", st.Graph.Skipped, st.Graph.Failed)
	}
}

func TestRunThroughPolicy(t *testing.T) {
	// Under RunThrough, dependents of a failed task still run; a
	// succeeding dependent stops the propagation.
	rt := New(Workers(4), OnError(RunThrough))
	defer rt.Shutdown()
	x, y := new(int), new(int)
	boom := errors.New("boom")
	var ran atomic.Int32
	rt.Go(func(*TC) error { return boom }, Out(x))
	mid := rt.Task(func(*TC) { ran.Add(1) }, In(x), Out(y))
	leaf := rt.Task(func(*TC) { ran.Add(1) }, In(y))
	rt.Taskwait()
	if ran.Load() != 2 {
		t.Fatalf("RunThrough should run dependents, ran=%d", ran.Load())
	}
	if mid.Err() != nil || leaf.Err() != nil {
		t.Fatalf("successful dependents carry errors: %v / %v", mid.Err(), leaf.Err())
	}
	if !errors.Is(rt.Err(), boom) {
		t.Fatalf("Runtime.Err = %v", rt.Err())
	}
}

func TestTaskwaitCtxReportsFirstChildError(t *testing.T) {
	rt := New(Workers(2))
	defer rt.Shutdown()
	boom := errors.New("boom")
	rt.Go(func(*TC) error { return boom })
	rt.Task(func(*TC) {})
	if err := rt.TaskwaitCtx(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("TaskwaitCtx = %v, want boom", err)
	}
	// A second wait over a clean scope reports nil.
	rt.Task(func(*TC) {})
	if err := rt.TaskwaitCtx(context.Background()); err != nil {
		t.Fatalf("TaskwaitCtx after clean round = %v", err)
	}
}

func TestCancellationDrainsBySkipping(t *testing.T) {
	// A long chain behind a slow head: cancelling mid-graph must skip the
	// not-yet-started tail, drain, and report the context error. Runs
	// under -race in CI (cancellation arrives from a timer goroutine).
	rt := New(Workers(2))
	defer rt.Shutdown()
	x := new(int)
	started := make(chan struct{})
	release := make(chan struct{})
	var tailRan atomic.Int32
	head := rt.Task(func(*TC) {
		close(started)
		<-release
	}, Out(x))
	var tail []*Handle
	for i := 0; i < 32; i++ {
		tail = append(tail, rt.Task(func(*TC) { tailRan.Add(1) }, InOut(x)))
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
		// Wait until the cancellation actually reached the runtime (it
		// arrives via context.AfterFunc on a separate goroutine) before
		// letting the head finish and release the tail.
		for rt.cancelCause() == nil {
			time.Sleep(50 * time.Microsecond)
		}
		release <- struct{}{}
	}()
	err := rt.TaskwaitCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("TaskwaitCtx = %v, want context.Canceled", err)
	}
	if head.Err() != nil {
		t.Fatalf("head had started before the cancel; err = %v", head.Err())
	}
	if tailRan.Load() != 0 {
		t.Fatalf("cancelled tail ran %d bodies", tailRan.Load())
	}
	for _, h := range tail {
		if err := h.Err(); !errors.Is(err, ErrSkipped) || !errors.Is(err, context.Canceled) {
			t.Fatalf("tail err = %v, want skip wrapping context.Canceled", err)
		}
	}
	// The runtime stays cancelled: later spawns are skipped too.
	late := rt.Task(func(*TC) { tailRan.Add(1) })
	rt.Taskwait()
	if err := late.Err(); !errors.Is(err, ErrSkipped) {
		t.Fatalf("post-cancel spawn err = %v, want skipped", err)
	}
}

func TestCommutativePanicReleasesLocks(t *testing.T) {
	// Regression: a panic inside a commutative body must not leak the
	// per-key locks (they are released via defer), or every later
	// commutative task on the key would deadlock.
	rt := New(Workers(2))
	defer rt.Shutdown()
	x, y := new(int), new(int)
	bad := rt.Task(func(*TC) { panic("boom") }, Commutative(x, y))
	after := rt.Task(func(*TC) { *x++ }, Commutative(x, y))
	rt.Taskwait()
	var tp *TaskPanic
	if !errors.As(bad.Err(), &tp) {
		t.Fatalf("bad err = %v", bad.Err())
	}
	if after.Err() != nil || *x != 1 {
		t.Fatalf("commutative task after panic: err=%v x=%d", after.Err(), *x)
	}
}

func TestFinishedPredecessorErrorStillSkips(t *testing.T) {
	// Regression: a dependent submitted after its failing predecessor
	// already finished must still inherit the failure — skip-vs-run must
	// not depend on the submit/finish race.
	rt := New(Workers(2))
	defer rt.Shutdown()
	boom := errors.New("boom")
	x := rt.Register(new(int))
	h := rt.Go(func(*TC) error { return boom }, Out(x))
	<-h.Done() // predecessor fully finished before the dependent submits
	ran := false
	dep := rt.Task(func(*TC) { ran = true }, In(x))
	rt.Taskwait()
	if err := dep.Err(); !errors.Is(err, ErrSkipped) || !errors.Is(err, boom) {
		t.Fatalf("dep err = %v, want skip wrapping boom", err)
	}
	if ran {
		t.Fatal("dependent of an already-failed producer ran its body")
	}
}

func TestInlineErrorReportedByTaskwaitCtx(t *testing.T) {
	rt := New(Workers(1))
	defer rt.Shutdown()
	boom := errors.New("boom")
	rt.Go(func(*TC) error { return boom }, If(false))
	if err := rt.TaskwaitCtx(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("TaskwaitCtx = %v, want inline error", err)
	}
}

func TestTaskwaitClosesErrorRound(t *testing.T) {
	// A plain Taskwait consumes the scope's failures too: a later
	// TaskwaitCtx must not report a stale error from the earlier round.
	rt := New(Workers(2))
	defer rt.Shutdown()
	rt.Go(func(*TC) error { return errors.New("round one") })
	rt.Taskwait()
	rt.Task(func(*TC) {})
	if err := rt.TaskwaitCtx(context.Background()); err != nil {
		t.Fatalf("stale scope error leaked across Taskwait: %v", err)
	}
}

func TestInlineTaskHandle(t *testing.T) {
	rt := New(Workers(1))
	defer rt.Shutdown()
	boom := errors.New("boom")
	ran := false
	h := rt.Go(func(*TC) error { ran = true; return boom }, If(false))
	if !ran {
		t.Fatal("If(false) task must run undeferred")
	}
	if !errors.Is(h.Err(), boom) {
		t.Fatalf("inline handle err = %v", h.Err())
	}
	select {
	case <-h.Done():
	default:
		t.Fatal("inline handle Done must be pre-closed")
	}
	if h.TaskID() != 0 {
		t.Fatal("inline tasks carry no graph ID")
	}
}

func TestTaskLoopHandles(t *testing.T) {
	rt := New(Workers(4))
	defer rt.Shutdown()
	var n atomic.Int32
	hs := rt.TaskLoop(100, 32, func(_ *TC, lo, hi int) { n.Add(int32(hi - lo)) })
	if len(hs) != 4 {
		t.Fatalf("len(handles)=%d, want 4", len(hs))
	}
	rt.Taskwait()
	for _, h := range hs {
		if h.Err() != nil {
			t.Fatal(h.Err())
		}
	}
	if n.Load() != 100 {
		t.Fatalf("n=%d", n.Load())
	}
}

// --- Simulated backend -------------------------------------------------------

func TestSimGoErrorSurfacesAsRunError(t *testing.T) {
	boom := errors.New("boom")
	var dep *Handle
	_, err := RunSim(machine.Paper(4), func(rt *Runtime) {
		x := rt.Register(new(int))
		// Cost keeps the failing task in flight (in virtual time) until
		// the dependent is submitted, exercising the live-edge propagation
		// path (an already-finished predecessor would propagate through
		// its recorded outcome instead).
		rt.Go(func(*TC) error { return boom }, Out(x), Label("bad"), Cost(time.Millisecond))
		dep = rt.Task(func(*TC) {}, In(x))
		rt.Taskwait()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("RunSim err = %v, want boom", err)
	}
	if depErr := dep.Err(); !errors.Is(depErr, ErrSkipped) || !errors.Is(depErr, boom) {
		t.Fatalf("sim dependent err = %v", depErr)
	}
}

func TestSimDatumMatchesRawKeys(t *testing.T) {
	// The same program via handles and via raw keys must produce the same
	// makespan: the fast path changes bookkeeping, not policy.
	prog := func(useDatum bool) time.Duration {
		st, err := RunSim(machine.Paper(8), func(rt *Runtime) {
			keys := make([]int, 8)
			for i := 0; i < 8; i++ {
				var k any = &keys[i]
				if useDatum {
					k = rt.Register(&keys[i])
				}
				for j := 0; j < 4; j++ {
					rt.Task(func(*TC) {}, InOut(k), Cost(100*time.Microsecond))
				}
			}
			rt.Taskwait()
		})
		if err != nil {
			panic(err)
		}
		return st.Makespan
	}
	if a, b := prog(true), prog(false); a != b {
		// Deterministic per seed: any divergence means the datum path
		// changed scheduling behavior.
		t.Fatalf("datum vs raw-key makespan differ: %v vs %v", a, b)
	}
}

func TestRunSimCtxCancellation(t *testing.T) {
	// Cancel a simulated run mid-flight from a real timer: the graph
	// drains by skipping and the run reports the context error.
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int32
	_, err := RunSimCtx(ctx, machine.Paper(2), func(rt *Runtime) {
		x := rt.Register(new(int))
		for i := 0; i < 200; i++ {
			i := i
			rt.Task(func(*TC) {
				executed.Add(1)
				if i == 3 {
					cancel() // fires while the graph is mid-flight
				}
			}, InOut(x), Cost(time.Millisecond))
		}
		rt.Taskwait()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunSimCtx err = %v, want context.Canceled", err)
	}
	if n := executed.Load(); n >= 200 || n < 4 {
		t.Fatalf("executed %d bodies; cancellation should skip most of the chain", n)
	}
}
