package ompss_test

import (
	"fmt"
	"time"

	"ompssgo/machine"
	"ompssgo/ompss"
)

// The paper's pragma form,
//
//	#pragma omp task input(*a) inout(*b) output(*c)
//	work(a, b, c);
//
// translates directly to clause values on Task.
func Example() {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()

	a, b, c := new(int), new(int), new(int)
	rt.Task(func(*ompss.TC) { *a = 2 }, ompss.Out(a))
	rt.Task(func(*ompss.TC) { *b = 3 }, ompss.Out(b))
	rt.Task(func(*ompss.TC) { *c = *a * *b }, ompss.In(a), ompss.In(b), ompss.Out(c))
	rt.Taskwait()
	fmt.Println(*c)
	// Output: 6
}

// TaskwaitOn waits only for the last writer of one datum — Listing 1's
// loop-gate idiom.
func ExampleTC_TaskwaitOn() {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()

	readCtx := new(int)
	frames := 0
	for k := 0; k < 3; k++ {
		rt.Task(func(*ompss.TC) { frames++ }, ompss.InOut(readCtx))
		rt.TaskwaitOn(readCtx) // the read stage of iteration k has finished
	}
	fmt.Println(frames)
	// Output: 3
}

// Array-section dependences let disjoint blocks run in parallel without
// manual per-block keys.
func ExampleInRegion() {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()

	data := make([]int, 8)
	base := &data[0]
	rt.Task(func(*ompss.TC) { data[0] = 1 }, ompss.OutRegion(base, 0, 4))
	rt.Task(func(*ompss.TC) { data[4] = 2 }, ompss.OutRegion(base, 4, 8))
	rt.Task(func(*ompss.TC) { fmt.Println(data[0] + data[4]) },
		ompss.InRegion(base, 0, 8))
	rt.Taskwait()
	// Output: 3
}

// RunSim executes the same program on the simulated 32-core cc-NUMA
// machine; results are identical, and virtual time reveals the scaling.
func ExampleRunSim() {
	st, err := ompss.RunSim(machine.Paper(32), func(rt *ompss.Runtime) {
		for i := 0; i < 64; i++ {
			rt.Task(func(*ompss.TC) {}, ompss.Cost(time.Millisecond))
		}
		rt.Taskwait()
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(st.Tasks, st.Makespan < 10*time.Millisecond)
	// Output: 64 true
}
