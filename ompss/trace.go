package ompss

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ompssgo/internal/core"
)

// TraceKind labels a task lifecycle event.
type TraceKind int

const (
	// TraceSubmit records task creation (with its dependence
	// predecessors).
	TraceSubmit TraceKind = iota
	// TraceStart records dispatch onto a worker lane.
	TraceStart
	// TraceEnd records completion.
	TraceEnd
)

func (k TraceKind) String() string {
	switch k {
	case TraceSubmit:
		return "submit"
	case TraceStart:
		return "start"
	case TraceEnd:
		return "end"
	}
	return "?"
}

// TraceEvent is one recorded task lifecycle event. At is relative to the
// runtime epoch: wall-clock for native runs, virtual time for simulated
// runs.
type TraceEvent struct {
	Kind   TraceKind
	Task   uint64
	Label  string
	Worker int
	At     time.Duration
	Preds  []uint64 // submit events only
}

// Tracer records task events for analysis and DOT export. Safe for
// concurrent use. Attach with the Trace option.
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

func (tr *Tracer) record(kind TraceKind, t *core.Task, worker int, at time.Duration) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ev := TraceEvent{Kind: kind, Task: t.ID, Label: t.Label, Worker: worker, At: at}
	if kind == TraceSubmit {
		ev.Preds = append([]uint64(nil), t.Preds...)
	}
	tr.events = append(tr.events, ev)
}

// Events returns a copy of the recorded events in record order.
func (tr *Tracer) Events() []TraceEvent {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]TraceEvent(nil), tr.events...)
}

// Summary condenses a trace.
type Summary struct {
	Tasks         int
	Edges         int
	ByWorker      map[int]int // tasks executed per lane
	Span          time.Duration
	MaxConcurrent int // peak simultaneously running tasks
}

// Summary computes aggregate scheduling statistics from the trace.
func (tr *Tracer) Summary() Summary {
	evs := tr.Events()
	s := Summary{ByWorker: make(map[int]int)}
	running := 0
	for _, ev := range evs {
		switch ev.Kind {
		case TraceSubmit:
			s.Tasks++
			s.Edges += len(ev.Preds)
		case TraceStart:
			s.ByWorker[ev.Worker]++
			running++
			if running > s.MaxConcurrent {
				s.MaxConcurrent = running
			}
		case TraceEnd:
			running--
		}
		if ev.At > s.Span {
			s.Span = ev.At
		}
	}
	return s
}

// WriteTimeline emits the trace as CSV — one row per executed task with its
// lane and start/end times (µs since the runtime epoch; virtual time for
// simulated runs) — a Paraver-style timeline for plotting schedules.
func (tr *Tracer) WriteTimeline(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "task,label,lane,start_us,end_us"); err != nil {
		return err
	}
	type open struct {
		lane  int
		start time.Duration
		label string
	}
	labels := make(map[uint64]string)
	running := make(map[uint64]open)
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case TraceSubmit:
			labels[ev.Task] = ev.Label
		case TraceStart:
			running[ev.Task] = open{lane: ev.Worker, start: ev.At, label: labels[ev.Task]}
		case TraceEnd:
			o, ok := running[ev.Task]
			if !ok {
				continue
			}
			delete(running, ev.Task)
			if _, err := fmt.Fprintf(w, "%d,%q,%d,%.3f,%.3f\n",
				ev.Task, o.label, o.lane,
				float64(o.start)/1e3, float64(ev.At)/1e3); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteDOT emits the recorded task graph in Graphviz DOT format: one node
// per task (labelled, annotated with its executing lane) and one edge per
// dependence. This is the tool-side equivalent of the paper's Listing 1
// discussion — it makes the pipeline structure visible.
func (tr *Tracer) WriteDOT(w io.Writer) error {
	evs := tr.Events()
	type node struct {
		label  string
		worker int
		has    bool
	}
	nodes := make(map[uint64]*node)
	order := []uint64{}
	type edge struct{ from, to uint64 }
	var edges []edge
	for _, ev := range evs {
		n := nodes[ev.Task]
		if n == nil {
			n = &node{worker: -1}
			nodes[ev.Task] = n
			order = append(order, ev.Task)
		}
		switch ev.Kind {
		case TraceSubmit:
			n.label = ev.Label
			n.has = true
			for _, p := range ev.Preds {
				edges = append(edges, edge{p, ev.Task})
			}
		case TraceStart:
			n.worker = ev.Worker
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	if _, err := fmt.Fprintln(w, "digraph taskgraph {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB; node [shape=box, fontsize=10];")
	for _, id := range order {
		n := nodes[id]
		if !n.has {
			continue
		}
		label := n.label
		if label == "" {
			label = fmt.Sprintf("task %d", id)
		}
		if n.worker >= 0 {
			fmt.Fprintf(w, "  t%d [label=%q, tooltip=\"lane %d\"];\n", id, label, n.worker)
		} else {
			fmt.Fprintf(w, "  t%d [label=%q];\n", id, label)
		}
	}
	for _, e := range edges {
		fmt.Fprintf(w, "  t%d -> t%d;\n", e.from, e.to)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
