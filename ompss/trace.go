package ompss

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ompssgo/internal/obs"
)

// TraceKind labels a task lifecycle event.
type TraceKind int

const (
	// TraceSubmit records task creation (with its dependence
	// predecessors).
	TraceSubmit TraceKind = iota
	// TraceStart records dispatch onto a worker lane.
	TraceStart
	// TraceEnd records completion.
	TraceEnd
)

func (k TraceKind) String() string {
	switch k {
	case TraceSubmit:
		return "submit"
	case TraceStart:
		return "start"
	case TraceEnd:
		return "end"
	}
	return "?"
}

// TraceEvent is one recorded task lifecycle event. At is relative to the
// runtime epoch: wall-clock for native runs, virtual time for simulated
// runs.
type TraceEvent struct {
	Kind   TraceKind
	Task   uint64
	Label  string
	Worker int
	At     time.Duration
	Preds  []uint64 // submit events only
}

// Tracer is the compatibility view over the observability stream
// (internal/obs): it exposes the classic submit/start/end task-lifecycle
// events for the DOT/SVG exports, the CSV timeline, and Summary, while
// the backing Recorder captures the full widened vocabulary (steals, idle
// gaps, taskwaits, renames) with per-worker ring buffers and no shared
// lock on the record path. Safe for concurrent use; the zero value is
// ready to use (its recorder is created on first need). Attach with the
// Trace option; use Recorder to reach the full stream and the obs
// analyzer.
type Tracer struct {
	once sync.Once
	rec  *obs.Recorder
}

// NewTracer returns an empty tracer backed by a default-capacity
// observability recorder.
func NewTracer() *Tracer { return &Tracer{rec: obs.NewRecorder()} }

// Recorder returns the backing observability recorder — hand it to
// obs.Analyze, obs.WriteChromeTrace, or obs.WriteParaverCSV for the
// reports the Tracer view does not surface.
func (tr *Tracer) Recorder() *obs.Recorder {
	tr.once.Do(func() {
		if tr.rec == nil { // zero-value Tracer; NewTracer pre-fills
			tr.rec = obs.NewRecorder()
		}
	})
	return tr.rec
}

// Events returns the task lifecycle events (submit/start/end) recorded so
// far, in stream order. Events beyond a ring's capacity are dropped oldest
// first; Recorder().Snapshot() reports the exact drop counts.
func (tr *Tracer) Events() []TraceEvent {
	t := tr.Recorder().Snapshot()
	var preds map[uint64][]uint64
	for i := range t.Events {
		if ev := &t.Events[i]; ev.Kind == obs.EvEdge {
			if preds == nil {
				preds = make(map[uint64][]uint64)
			}
			preds[ev.Task] = append(preds[ev.Task], ev.Arg)
		}
	}
	var out []TraceEvent
	for i := range t.Events {
		ev := &t.Events[i]
		switch ev.Kind {
		case obs.EvSubmit:
			out = append(out, TraceEvent{Kind: TraceSubmit, Task: ev.Task, Label: ev.Label,
				Worker: int(ev.Worker), At: time.Duration(ev.At), Preds: preds[ev.Task]})
		case obs.EvStart:
			out = append(out, TraceEvent{Kind: TraceStart, Task: ev.Task,
				Worker: int(ev.Worker), At: time.Duration(ev.At)})
		case obs.EvEnd:
			out = append(out, TraceEvent{Kind: TraceEnd, Task: ev.Task,
				Worker: int(ev.Worker), At: time.Duration(ev.At)})
		}
	}
	return out
}

// Summary condenses a trace.
type Summary struct {
	Tasks         int
	Edges         int
	ByWorker      map[int]int // tasks executed per lane
	Span          time.Duration
	MaxConcurrent int // peak simultaneously running tasks
}

// Summary computes aggregate scheduling statistics from the trace.
func (tr *Tracer) Summary() Summary {
	evs := tr.Events()
	s := Summary{ByWorker: make(map[int]int)}
	running := 0
	for _, ev := range evs {
		switch ev.Kind {
		case TraceSubmit:
			s.Tasks++
			s.Edges += len(ev.Preds)
		case TraceStart:
			s.ByWorker[ev.Worker]++
			running++
			if running > s.MaxConcurrent {
				s.MaxConcurrent = running
			}
		case TraceEnd:
			running--
		}
		if ev.At > s.Span {
			s.Span = ev.At
		}
	}
	return s
}

// WriteTimeline emits the trace as CSV — one row per executed task with its
// lane and start/end times (µs since the runtime epoch; virtual time for
// simulated runs) — a Paraver-style timeline for plotting schedules.
func (tr *Tracer) WriteTimeline(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "task,label,lane,start_us,end_us"); err != nil {
		return err
	}
	type open struct {
		lane  int
		start time.Duration
		label string
	}
	labels := make(map[uint64]string)
	running := make(map[uint64]open)
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case TraceSubmit:
			labels[ev.Task] = ev.Label
		case TraceStart:
			running[ev.Task] = open{lane: ev.Worker, start: ev.At, label: labels[ev.Task]}
		case TraceEnd:
			o, ok := running[ev.Task]
			if !ok {
				continue
			}
			delete(running, ev.Task)
			if _, err := fmt.Fprintf(w, "%d,%q,%d,%.3f,%.3f\n",
				ev.Task, o.label, o.lane,
				float64(o.start)/1e3, float64(ev.At)/1e3); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteDOT emits the recorded task graph in Graphviz DOT format: one node
// per task (labelled, annotated with its executing lane) and one edge per
// dependence. This is the tool-side equivalent of the paper's Listing 1
// discussion — it makes the pipeline structure visible.
func (tr *Tracer) WriteDOT(w io.Writer) error {
	evs := tr.Events()
	type node struct {
		label  string
		worker int
		has    bool
	}
	nodes := make(map[uint64]*node)
	order := []uint64{}
	type edge struct{ from, to uint64 }
	var edges []edge
	for _, ev := range evs {
		n := nodes[ev.Task]
		if n == nil {
			n = &node{worker: -1}
			nodes[ev.Task] = n
			order = append(order, ev.Task)
		}
		switch ev.Kind {
		case TraceSubmit:
			n.label = ev.Label
			n.has = true
			for _, p := range ev.Preds {
				edges = append(edges, edge{p, ev.Task})
			}
		case TraceStart:
			n.worker = ev.Worker
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	if _, err := fmt.Fprintln(w, "digraph taskgraph {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB; node [shape=box, fontsize=10];")
	for _, id := range order {
		n := nodes[id]
		if !n.has {
			continue
		}
		label := n.label
		if label == "" {
			label = fmt.Sprintf("task %d", id)
		}
		if n.worker >= 0 {
			fmt.Fprintf(w, "  t%d [label=%q, tooltip=\"lane %d\"];\n", id, label, n.worker)
		} else {
			fmt.Fprintf(w, "  t%d [label=%q];\n", id, label)
		}
	}
	for _, e := range edges {
		fmt.Fprintf(w, "  t%d -> t%d;\n", e.from, e.to)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
