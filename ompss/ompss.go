// Package ompss implements the OpenMP Superscalar (OmpSs) task-dataflow
// programming model as a Go library.
//
// OmpSs extends OpenMP with the StarSs dependence clauses: functions are
// annotated as tasks whose arguments carry input/output/inout directions;
// calls add nodes to a task graph instead of executing immediately, and the
// runtime resolves dependences and schedules ready tasks onto worker
// threads. This package is a from-scratch reproduction of that model as
// evaluated in Andersch, Chi & Juurlink, "Programming Parallel Embedded and
// Consumer Applications in OpenMP Superscalar" (PPoPP 2012): the pragma
//
//	#pragma omp task input(*a) inout(*b) output(*c)
//	work(a, b, c);
//
// becomes
//
//	rt.Task(func(tc *ompss.TC) { work(a, b, c) },
//	        ompss.In(a), ompss.InOut(b), ompss.Out(c))
//
// Two execution backends share the same dependence tracker and scheduler
// (internal/core):
//
//   - New creates a native runtime executing on goroutine workers.
//   - RunSim / RunSimCtx execute a program on a simulated cc-NUMA machine
//     (package machine), reproducing the paper's 1–32 core sweep on any
//     host.
//
// On top of the pragma-shaped clause surface, the API is built around two
// first-class types:
//
//   - *Datum, a registered data handle (Runtime.Register /
//     Runtime.RegisterRegion): the datum's dependence shard and record are
//     resolved once, so clauses built from the handle skip interface
//     hashing and map lookups on the submit hot path — the library
//     analogue of the compiler-resolved clause expressions of OmpSs.
//     Raw any-typed keys remain fully supported and resolve to the same
//     records.
//   - *Handle, the future returned by Task, Go, and TaskLoop: Done is
//     closed at completion and Err reports the outcome. Go spawns
//     error-returning bodies; a failure (returned error or wrapped panic,
//     see TaskPanic) propagates along dependence edges under the runtime's
//     ErrorPolicy (OnError): SkipDependents releases dependents without
//     running them, RunThrough runs them anyway. TaskwaitCtx and RunSimCtx
//     add context-aware waiting — cancellation drains the graph by
//     skipping every task that has not started.
//
// As in OmpSs, the master thread participates in execution: with Workers(n),
// n−1 dedicated workers are started and the program thread helps execute
// tasks inside Taskwait, TaskwaitOn, and Shutdown. Polling wait mode (the
// OmpSs default, paper §4/§5) busy-waits between tasks; Blocking parks idle
// threads on a condition variable.
package ompss

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ompssgo/internal/core"
	"ompssgo/internal/obs"
	"ompssgo/internal/tune"
)

// WaitMode selects how idle workers and waiters behave.
type WaitMode int

const (
	// Polling busy-waits (the OmpSs runtime default): lowest release
	// latency, but cores stay occupied even without work (paper §5).
	Polling WaitMode = iota
	// Blocking parks idle threads on a condition variable, paying an OS
	// wake latency on release (the Pthreads-style default).
	Blocking
)

func (m WaitMode) String() string {
	if m == Blocking {
		return "blocking"
	}
	return "polling"
}

// config collects runtime options. The session-relevant subset — policy,
// the Tuning profile, rec, tenant, maxInFlight, admission — is accepted
// uniformly at New and NewSession: NewSession starts from a copy of the
// runtime's config and applies its own options on top, so session values
// override runtime defaults field by field. Scheduling/renaming knobs live
// in the Tuning profile (tuning.go); the legacy single-knob options write
// single profile fields.
type config struct {
	workers     int
	wait        WaitMode
	tun         Tuning
	seed        int64
	rec         *obs.Recorder
	policy      ErrorPolicy
	tenant      int
	maxInFlight int
	admission   AdmissionMode
}

// schedPolicy assembles the core scheduling policy both backends hand to
// their Sched — the single point where runtime options become placement and
// victim-selection behavior (internal/core/policy.go).
func (c config) schedPolicy() core.Policy {
	return core.Policy{Locality: c.localityOn(), Affinity: c.affinityOn(), Domains: c.domainsN()}
}

// Option configures a Runtime.
type Option func(*config)

// Workers sets the total thread count (master + dedicated workers), like
// OMP_NUM_THREADS. Defaults to 1 for New (callers size explicitly) and to
// the machine's core count for RunSim.
func Workers(n int) Option { return func(c *config) { c.workers = n } }

// Wait selects the idle-wait policy (default Polling, as in OmpSs).
func Wait(m WaitMode) Option { return func(c *config) { c.wait = m } }

// boolSetting converts a legacy on/off argument to a pinned Setting.
func boolSetting(on bool) Setting {
	if on {
		return On
	}
	return Off
}

// Locality toggles locality-aware scheduling: successors released by a
// finishing task are placed at the head of the finishing worker's queue so
// producer→consumer chains run back-to-back on one core (default true; the
// paper's ray-rot analysis credits this policy). Equivalent to
// WithTuning(Tuning{Locality: On/Off}).
func Locality(on bool) Option { return func(c *config) { c.tun.Locality = boolSetting(on) } }

// AffinitySched toggles honoring Affinity clause hints (default true): on,
// a hinted task is submitted to the mailbox of its datum's home lane; off,
// hints are ignored and hinted tasks join the global FIFO like any other.
// Equivalent to WithTuning(Tuning{Affinity: On/Off}).
func AffinitySched(on bool) Option { return func(c *config) { c.tun.Affinity = boolSetting(on) } }

// Domains splits the workers into n contiguous steal domains (modeling
// sockets): an idle worker probes every victim in its own domain before
// crossing into another, so affinity- and locality-placed work is drained
// by near workers first and only leaves its domain as a last resort.
// Values < 2 (the default) mean flat random-victim stealing. Equivalent to
// WithTuning(Tuning{Domains: Fixed(n)}).
func Domains(n int) Option { return func(c *config) { c.tun.Domains = Fixed(n) } }

// Seed fixes the scheduler's steal-victim RNG.
func Seed(s int64) Option { return func(c *config) { c.seed = s } }

// WithRenaming toggles dependence renaming (data versioning), the
// StarSs/OmpSs mechanism that eliminates WAR/WAW stalls: a writer on a
// renameable datum (Datum.EnableRenaming) whose only obstacles are earlier
// readers — or, for output-only writes, an unfinished earlier writer — gets
// a fresh private instance instead of waiting; the readers keep the old
// instance, and the latest instance is copied back onto the canonical
// storage when everything in flight has drained. Default off. Renaming
// never fires for datums that did not call EnableRenaming, and both
// backends share the single decision path in the dependence tracker, so
// native and simulated runs stay value-identical with the knob on or off.
//
// Failure propagation (OnError) follows the edges that remain: a renamed
// writer does not consume the earlier tasks' output, so it no longer
// inherits their failures through the broken WAR/WAW edges — under
// SkipDependents it runs (and publishes) even when a program-order
// predecessor it never depended on fails. A renamed InOut keeps its true
// RAW edge and still inherits the previous writer's failure.
// Equivalent to WithTuning(Tuning{Renaming: On/Off}).
func WithRenaming(on bool) Option { return func(c *config) { c.tun.Renaming = boolSetting(on) } }

// RenameCap bounds the live renamed instances per datum (default
// core.DefaultMaxVersions): a write that would exceed the cap stalls on
// its WAR/WAW edges instead, keeping the memory held by in-flight copies
// proportional to the cap, not to the submission depth. Equivalent to
// WithTuning(Tuning{RenameCap: Fixed(n)}); Tuning{RenameCap: Auto} adapts
// the cap online instead.
func RenameCap(n int) Option { return func(c *config) { c.tun.RenameCap = Fixed(n) } }

// Trace attaches a Tracer — the compatibility view over the observability
// stream (DOT/SVG export, timeline CSV, Summary). It is equivalent to
// Observe(tr.Recorder()); attach at most one recorder per run (the last
// Trace/Observe option wins).
func Trace(tr *Tracer) Option { return func(c *config) { c.rec = tr.Recorder() } }

// Observe attaches an observability recorder (internal/obs): both backends
// and the core engine emit the full event vocabulary — submit, ready,
// start, end, skip, steal, idle-enter/exit, taskwait-enter/exit, rename,
// writeback — into its per-worker ring buffers. Detached (the default) the
// runtime records nothing and pays only a nil check per site; attached,
// the record path performs zero heap allocations and takes no shared lock.
// After the run drains, Recorder.Snapshot yields the merged stream for
// obs.Analyze and the Chrome-trace/Paraver exporters (see cmd/ompss-trace).
func Observe(r *obs.Recorder) Option { return func(c *config) { c.rec = r } }

func buildConfig(opts []Option) config {
	// workers == 0 means "unset": New defaults to 1, RunSim to the
	// simulated machine's core count. Unset Tuning fields resolve to the
	// pre-profile defaults (locality/affinity on, renaming off) through
	// the config accessors in tuning.go.
	c := config{wait: Polling, seed: 1}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// backend abstracts the native and simulated executors. All engine state
// (graph, scheduler) lives behind it. The embedded core.Backend is the
// engine-facing seam every execution domain satisfies — including the
// multi-process coordinator in internal/dist, which shares no code with
// this package's executors beyond the dependence tracker itself.
type backend interface {
	core.Backend
	submit(from *TC, t *core.Task)
	submitBatch(from *TC, ts []*core.Task)
	taskwait(from *TC, ctx *core.Context)
	taskwaitOn(from *TC, keys []any)
	critical(from *TC, name string, hold time.Duration, f func())
	commutative(from *TC, keys []any, f func())
	compute(from *TC, d time.Duration)
	touch(from *TC, key any, bytes int64, write bool)
	deps() *core.Graph
	// waitFor parks the calling thread until cond holds, helping to execute
	// ready tasks meanwhile (the taskwait discipline generalized to an
	// arbitrary predicate — session drain and admission backpressure use
	// it). cond must eventually be flipped by task finishes or a
	// cancellation; it is re-evaluated at every scheduling point.
	waitFor(from *TC, cond func() bool)
	// cancelWake nudges parked threads after a cancellation so they can
	// observe the skip-everything state. Must be safe from any goroutine.
	cancelWake()
	// tuner returns the backend's feedback controller, nil when no Tuning
	// field armed one (auto TaskLoop chunking then falls back to a static
	// heuristic).
	tuner() *tune.Controller
	shutdown(from *TC)
	stats() RunStats
}

// TaskPanic is the error a panicking task body is wrapped into: instead of
// unwinding a worker (the old panic-poisoning behavior), the panic becomes
// the task's outcome, observable through Handle.Err, TaskwaitCtx, and
// Runtime.Err, and propagating to dependents like any other task error. As
// a safety valve, a native Shutdown re-panics with the first *TaskPanic if
// no error-returning API ever observed the runtime's failures — a program
// that ignores the error surface still crashes loudly.
type TaskPanic struct {
	Label string // the task's Label clause, if any
	Value any    // the original panic value
}

func (p *TaskPanic) Error() string {
	if p.Label != "" {
		return fmt.Sprintf("ompss: task %q panicked: %v", p.Label, p.Value)
	}
	return fmt.Sprintf("ompss: task panicked: %v", p.Value)
}

// errRef boxes an error for atomic first-wins publication.
type errRef struct{ err error }

// Runtime is an OmpSs runtime instance. Create with New (native execution)
// or receive one inside RunSim (simulated execution). Methods on Runtime act
// on behalf of the program's master thread; inside task bodies, use the TC
// methods instead.
//
// A Runtime is also a long-lived host for request-scoped Sessions
// (NewSession): every Runtime-level spawning call delegates to the
// implicit default session — rt.Task is rt.DefaultSession().Task — so
// batch-style programs and the serving surface share one API (see API).
type Runtime struct {
	be   backend
	main *TC
	cfg  config

	// def is the implicit default session every Runtime-level call acts on
	// (rt.Task ≡ rt.DefaultSession().Task); root is the accounting parent
	// of every session's domain, metering the global MaxInFlight budget;
	// sessID hands out session IDs (default session = 1).
	def    *Session
	root   *core.Domain
	sessID atomic.Uint64

	firstErr  atomic.Pointer[errRef] // first task failure (any kind)
	firstPan  atomic.Pointer[errRef] // first *TaskPanic, for the Shutdown valve
	cancelled atomic.Pointer[errRef] // cancellation cause; non-nil => skip-everything
	observed  atomic.Bool            // some error-returning API was consulted
	simMode   bool                   // sim runs surface failures via RunSim's error
}

// noteErr records a task failure: the first error (and first panic) sticks.
func (rt *Runtime) noteErr(err error) {
	if err == nil {
		return
	}
	if rt.firstErr.Load() == nil {
		rt.firstErr.CompareAndSwap(nil, &errRef{err})
	}
	rt.notePanic(err)
}

// notePanic arms the Shutdown panic valve without recording a global error.
func (rt *Runtime) notePanic(err error) {
	var tp *TaskPanic
	if errors.As(err, &tp) && rt.firstPan.Load() == nil {
		rt.firstPan.CompareAndSwap(nil, &errRef{tp})
	}
}

// noteTaskErr records a finished task's failure on the right error surface.
// Request-session tasks fail into their session's domain — Handle.Err,
// Session.Err, and Close report them — and do NOT become the runtime-global
// first error: a multi-tenant server's rt.Err must not answer with one
// tenant's private failure, and RunSim must not fail a whole simulation
// over a session-contained error. Panics still arm the Shutdown valve
// globally, so an unobserved panic crashes loudly no matter whose task
// panicked.
func (rt *Runtime) noteTaskErr(t *core.Task, err error) {
	if err == nil {
		return
	}
	if d := t.Domain; d != nil {
		if s, ok := d.Owner.(*Session); ok && s.ephemeral {
			rt.notePanic(err)
			return
		}
	}
	rt.noteErr(err)
}

// Err returns the first task failure recorded on this runtime (nil when
// every finished task succeeded so far). Failures inside request sessions
// are session-scoped — consult Session.Err, Handle.Err, or Session.Close —
// and never appear here. Calling Err marks the runtime's failures as
// observed, disarming the Shutdown panic valve.
func (rt *Runtime) Err() error {
	rt.observed.Store(true)
	if r := rt.firstErr.Load(); r != nil {
		return r.err
	}
	return nil
}

// cancelWith puts the runtime into cancellation drain: every task that has
// not started yet — including tasks submitted later — is released without
// running, finishing with a *SkipError wrapping cause. Idempotent; the
// first cause wins.
func (rt *Runtime) cancelWith(cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	if rt.cancelled.Load() == nil {
		rt.cancelled.CompareAndSwap(nil, &errRef{cause})
	}
	rt.be.cancelWake()
}

// cancelCause returns the cancellation cause, or nil when not cancelled.
func (rt *Runtime) cancelCause() error {
	if r := rt.cancelled.Load(); r != nil {
		return r.err
	}
	return nil
}

// skipReason decides, at dispatch, whether t must be released without
// running: always after a runtime-wide or session cancellation, and under
// the owning session's SkipDependents policy when an upstream failure
// reached it. Returns the error to finish the task with.
func (rt *Runtime) skipReason(t *core.Task) error {
	if ce := rt.cancelCause(); ce != nil {
		return &SkipError{Label: t.Label, Cause: ce}
	}
	pol := rt.cfg.policy
	if d := t.Domain; d != nil {
		if ce := d.CancelCause(); ce != nil {
			return &SkipError{Label: t.Label, Cause: ce}
		}
		if s, ok := d.Owner.(*Session); ok {
			pol = s.cfg.policy
		}
	}
	if pol == SkipDependents {
		if ue := t.Upstream(); ue != nil {
			return &SkipError{Label: t.Label, Cause: ue}
		}
	}
	return nil
}

// RunStats reports engine activity counters. Labels carries the per-label
// execution aggregates of the feedback controller's streaming view — the
// controller's inputs, user-inspectable without attaching a recorder. It is
// populated only when a Tuning field armed the controller (nil otherwise).
type RunStats struct {
	Graph  core.GraphStats
	Sched  core.SchedStats
	Labels []LabelStats
}

// LabelStats is the per-label slice of the controller's streaming
// aggregates: how many tasks (and TaskLoop iterations) carried the label,
// their total/mean/smoothed execution time, and how many of them renamed a
// write or fell back on a full version cap.
type LabelStats struct {
	Label     string
	Count     uint64
	Iters     uint64 // TaskLoop iterations covered by the counted tasks
	Renames   uint64
	Fallbacks uint64
	ExecNS    int64 // summed measured execution time (virtual ns under sim)
	MeanNS    int64
	EWMANS    int64 // smoothed per-task execution time
	PerIterNS int64 // smoothed per-iteration execution time (loop labels)
}

// labelStatsOf converts the controller's aggregator snapshot to the public
// stats slice (nil controller → nil slice).
func labelStatsOf(ctl *tune.Controller) []LabelStats {
	if ctl == nil {
		return nil
	}
	aggs := ctl.Aggregator().Snapshot()
	out := make([]LabelStats, len(aggs))
	for i, a := range aggs {
		out[i] = LabelStats{
			Label: a.Label, Count: a.Count, Iters: a.Iters,
			Renames: a.Renames, Fallbacks: a.Fallbacks,
			ExecNS: a.ExecNS, MeanNS: a.MeanNS, EWMANS: a.EWMANS,
			PerIterNS: a.PerIterNS,
		}
	}
	return out
}

// LabelStats returns the runtime's per-label execution aggregates (see
// RunStats.Labels); nil when no feedback controller is armed.
func (rt *Runtime) LabelStats() []LabelStats { return labelStatsOf(rt.be.tuner()) }

// Task spawns a task from the master thread and returns its Handle. The
// body runs once its dependences (declared via In/Out/InOut clauses) are
// satisfied.
func (rt *Runtime) Task(body func(*TC), clauses ...Clause) *Handle {
	return rt.main.Task(body, clauses...)
}

// Go spawns an error-returning task from the master thread: the body's
// returned error becomes the task's outcome (Handle.Err) and propagates to
// dependents under the runtime's ErrorPolicy.
func (rt *Runtime) Go(body func(*TC) error, clauses ...Clause) *Handle {
	return rt.main.Go(body, clauses...)
}

// Taskwait blocks until all tasks spawned by the master thread (and not by
// nested tasks) have finished. The master helps execute ready tasks while
// waiting (polling mode), as the OmpSs master thread does. Use TaskwaitCtx
// to also observe failures or bound the wait by a context.
func (rt *Runtime) Taskwait() { rt.main.Taskwait() }

// TaskwaitCtx is Taskwait with a completion story: it blocks until all
// tasks spawned by the master thread have finished, or until ctx is
// cancelled — cancellation drains the graph by skipping every task that
// has not started yet. It returns ctx's error after a cancellation,
// otherwise the first failure among the awaited children (nil when all
// succeeded).
func (rt *Runtime) TaskwaitCtx(ctx context.Context) error { return rt.main.TaskwaitCtx(ctx) }

// TaskwaitOn blocks until the current last writer of each key has finished —
// the `#pragma omp taskwait on(...)` of Listing 1, used to let the EOF
// condition of a pipelined loop depend on the read stage only.
func (rt *Runtime) TaskwaitOn(keys ...any) { rt.main.TaskwaitOn(keys...) }

// Critical runs f under the named global lock (`#pragma omp critical`).
func (rt *Runtime) Critical(name string, f func()) { rt.main.Critical(name, f) }

// TaskLoop spawns chunked loop tasks from the master thread (see
// TC.TaskLoop) and returns their Handles in chunk order.
func (rt *Runtime) TaskLoop(n, chunk int, body func(tc *TC, lo, hi int), clauses ...Clause) []*Handle {
	return rt.main.TaskLoop(n, chunk, body, clauses...)
}

// Stats returns engine activity counters. Call after a Taskwait for a
// consistent snapshot.
func (rt *Runtime) Stats() RunStats { return rt.be.stats() }

// Backend exposes the runtime's execution domain through the engine-level
// seam (see internal/core/backend.go).
func (rt *Runtime) Backend() core.Backend { return rt.be }

// TuneSetpoints is a live snapshot of the self-tuning controller's
// actuator values (see Tuning): what the feedback loops currently
// command for loop granularity, idle backoff, and the rename cap.
type TuneSetpoints struct {
	GrainTargetNS int64 // TaskLoop auto-chunk execution-time target
	SpinYields    int   // idle yields before a polling worker sleeps
	SleepCapNS    int64 // idle sleep growth cap
	RenameCap     int   // live renamed instances allowed per version chain
}

// TuneSetpoints reads the controller's current setpoints (atomic loads —
// safe while the runtime serves). ok is false when no feedback controller
// is armed, i.e. the runtime runs on static defaults.
func (rt *Runtime) TuneSetpoints() (sp TuneSetpoints, ok bool) {
	ctl := rt.be.tuner()
	if ctl == nil {
		return TuneSetpoints{}, false
	}
	s := ctl.Setpoints()
	return TuneSetpoints{
		GrainTargetNS: s.GrainTargetNS,
		SpinYields:    s.SpinYields,
		SleepCapNS:    s.SleepCapNS,
		RenameCap:     s.RenameCap,
	}, true
}

// DepRecords reports the live dependence records (exact-key datums,
// array-region bases) across the tracker's shards. Sessions release their
// arenas at Close, so for a drained runtime the pair returns to the
// pre-churn baseline — the arena-leak probe the session-churn soak
// (internal/serve, -soak) asserts on.
func (rt *Runtime) DepRecords() (datums, regions int) {
	return rt.be.Deps().ShardEntries()
}

// Shutdown drains all outstanding tasks (the implicit end-of-program
// barrier) and stops the workers. The native runtime requires it; RunSim
// calls it automatically when the program returns. Idempotent.
//
// Safety valve: if some task body panicked and no error-returning API
// (Handle.Err, Runtime.Err, TaskwaitCtx) was ever consulted, the first
// *TaskPanic re-panics here, so programs that ignore the error surface
// still fail loudly instead of silently dropping a panic.
func (rt *Runtime) Shutdown() {
	rt.be.shutdown(rt.main)
	if !rt.simMode && !rt.observed.Load() {
		if r := rt.firstPan.Load(); r != nil {
			panic(r.err)
		}
	}
}

// New creates a native runtime executing on goroutines.
func New(opts ...Option) *Runtime {
	cfg := buildConfig(opts)
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	rt := &Runtime{cfg: cfg}
	nb := newNativeBackend(rt, cfg)
	rt.be = nb
	rt.initMain(nb.masterLane())
	nb.start()
	return rt
}

// initMain builds the master TC and the implicit default session it
// belongs to (session ID 1, parented on the runtime's root accounting
// domain). Shared by New and the simulated runner.
func (rt *Runtime) initMain(lane int) {
	rt.root = &core.Domain{}
	rt.sessID.Store(1)
	def := &Session{rt: rt, cfg: rt.cfg}
	def.dom = &core.Domain{ID: 1, Parent: rt.root, Owner: def}
	rt.main = &TC{rt: rt, ctx: &core.Context{}, worker: lane, sess: def}
	def.tc = rt.main
	rt.def = def
}

// TC is the task context handed to task bodies and representing the master
// thread on a Runtime. It identifies the executing worker and carries the
// nesting scope for nested tasks and taskwait.
type TC struct {
	rt     *Runtime
	ctx    *core.Context // children spawned from this scope
	task   *core.Task    // nil for the master TC
	sess   *Session      // owning session (the default session on rt.main)
	worker int
	final  bool // inside a final task: all nested tasks run undeferred
}

// InFinal reports whether this context executes inside a final task (every
// nested task runs undeferred here).
func (tc *TC) InFinal() bool { return tc.final }

// Worker returns the lane (worker index) executing this context. The master
// thread owns the highest lane.
func (tc *TC) Worker() int { return tc.worker }

// Runtime returns the owning runtime.
func (tc *TC) Runtime() *Runtime { return tc.rt }

// Task spawns a nested task whose completion is covered by this context's
// Taskwait, returning its Handle.
func (tc *TC) Task(body func(*TC), clauses ...Clause) *Handle {
	return tc.spawn(func(c *TC) error { body(c); return nil }, clauses)
}

// Go spawns an error-returning nested task: the body's returned error
// becomes the task's outcome (Handle.Err) and propagates to dependents
// under the runtime's ErrorPolicy.
func (tc *TC) Go(body func(*TC) error, clauses ...Clause) *Handle {
	return tc.spawn(body, clauses)
}

// spawn is the common deferred/undeferred spawn path behind Task and Go.
func (tc *TC) spawn(body func(*TC) error, clauses []Clause) *Handle {
	return tc.spawnIters(body, clauses, 0)
}

// spawnIters is spawn carrying the TaskLoop chunk's iteration count (0 for
// ordinary tasks) into the task record, where the feedback controller reads
// it to learn per-iteration cost.
func (tc *TC) spawnIters(body func(*TC) error, clauses []Clause, iters int) *Handle {
	spec := buildSpec(clauses)
	spec.iters = iters
	if !spec.enabled || tc.final {
		return tc.spawnInline(&spec, body)
	}
	if s := tc.sess; s != nil && s.managed() {
		// Request sessions (and a globally limited default session) route
		// through admission control and arena tracking.
		return s.spawnManaged(tc, &spec, body)
	}
	ct := tc.buildDeferred(&spec, body)
	if s := tc.sess; s != nil {
		s.dom.Charge()
	}
	tc.rt.be.submit(tc, ct)
	return &Handle{rt: tc.rt, t: ct}
}

// spawnInline executes an If(false)/final task undeferred in the spawning
// thread, as in OmpSs. Costs are charged to the current thread in
// simulation. A panic propagates synchronously to the spawner (the body
// runs on its stack); a returned error is recorded like any task failure.
func (tc *TC) spawnInline(spec *taskSpec, body func(*TC) error) *Handle {
	if ce := tc.rt.cancelCause(); ce != nil {
		err := &SkipError{Label: spec.label, Cause: ce}
		tc.rt.noteErr(err)
		tc.ctx.NoteErr(err)
		return &Handle{rt: tc.rt, inlineErr: err}
	}
	if s := tc.sess; s != nil {
		if s.closedFlag.Load() {
			return s.deadHandle(spec.label, ErrSessionClosed)
		}
		if ce := s.dom.CancelCause(); ce != nil {
			err := &SkipError{Label: spec.label, Cause: ce}
			tc.ctx.NoteErr(err)
			return &Handle{rt: tc.rt, inlineErr: err}
		}
	}
	tc.rt.be.compute(tc, spec.cost)
	for _, a := range spec.accesses {
		tc.rt.be.touch(tc, a.Key, a.Bytes, a.Writes())
	}
	child := &TC{rt: tc.rt, ctx: &core.Context{Depth: tc.ctx.Depth + 1},
		sess: tc.sess, worker: tc.worker, final: tc.final || spec.final}
	err := tc.runInline(child, body, spec.accesses)
	if s := tc.sess; s != nil && s.ephemeral {
		tc.rt.notePanic(err)
	} else {
		tc.rt.noteErr(err)
	}
	// Inline tasks never enter the graph, so record the failure on the
	// spawning scope here — TaskwaitCtx reports it like any child's.
	tc.ctx.NoteErr(err)
	return &Handle{rt: tc.rt, inlineErr: err}
}

// buildDeferred constructs the core task of a deferred spawn — everything
// but the submission, so Batch can accumulate tasks and submit them in one
// atomic batch.
func (tc *TC) buildDeferred(spec *taskSpec, body func(*TC) error) *core.Task {
	ct := tc.allocTask()
	ct.Label = spec.label
	ct.Priority = spec.priority
	ct.CPUCost = int64(spec.cost)
	ct.Iters = spec.iters
	ct.Accesses = spec.accesses
	ct.Parent = tc.ctx
	if s := tc.sess; s != nil {
		// The session is the task's failure/cancellation/accounting domain,
		// and its tenant class boosts the task onto the matching priority
		// lane.
		ct.Domain = s.dom
		ct.Priority += s.cfg.tenant
	}
	if spec.hasAffinity {
		ct.SetAffinity(spec.affinity)
	}
	child := &TC{rt: tc.rt, ctx: &core.Context{Depth: tc.ctx.Depth + 1},
		task: ct, sess: tc.sess, final: spec.final}
	label := spec.label
	commKeys := commutativeKeys(spec.accesses)
	ct.Body = func() (err error) {
		child.worker = ct.Worker
		defer func() {
			if r := recover(); r != nil {
				err = &TaskPanic{Label: label, Value: r}
			}
		}()
		if len(commKeys) > 0 {
			// Commutative mutual exclusion: the backend acquires the
			// per-key locks in a globally consistent order (see the
			// backend's commutative), so tasks declaring the same keys in
			// different clause orders cannot deadlock.
			tc.rt.be.commutative(child, commKeys, func() { err = body(child) })
			return err
		}
		return body(child)
	}
	return ct
}

// allocTask produces the core task record of a deferred spawn: request
// sessions draw from the arena pool (their Close resets and returns every
// record), everything else allocates — the default session's tasks live
// for the runtime and are never recycled.
func (tc *TC) allocTask() *core.Task {
	if s := tc.sess; s != nil && s.ephemeral {
		return taskPool.Get().(*core.Task)
	}
	return new(core.Task)
}

// runInline executes an undeferred body, honoring commutative mutual
// exclusion against deferred tasks on the same keys.
func (tc *TC) runInline(child *TC, body func(*TC) error, accesses []core.Access) error {
	if commKeys := commutativeKeys(accesses); len(commKeys) > 0 {
		var err error
		tc.rt.be.commutative(child, commKeys, func() { err = body(child) })
		return err
	}
	return body(child)
}

// commutativeKeys collects the exact-key Commutative accesses of a spec
// (region commutativity is handled by the dependence system itself).
func commutativeKeys(accesses []core.Access) []any {
	var keys []any
	for _, a := range accesses {
		if a.Mode == core.Commutative {
			if _, isRegion := a.Key.(core.Region); !isRegion {
				keys = append(keys, a.Key)
			}
		}
	}
	return keys
}

// TaskLoop partitions the iteration space [0, n) into chunks of at most
// `chunk` iterations and spawns one task per chunk — the OmpSs/OpenMP
// taskloop construct. The clauses apply to every chunk task (use OutRegion
// and friends with per-chunk ranges inside `clauses` builders when chunks
// touch distinct data; for independent chunks no clauses are needed).
// TaskLoop does not wait; pair with Taskwait. It returns the chunk tasks'
// Handles in chunk order.
//
// chunk == Auto asks the runtime to size the chunks: the grain controller's
// decision when Tuning{Grain: Auto} armed one (targeting its per-chunk
// execution-time window from the label's measured per-iteration cost), the
// pinned Tuning{Grain: Fixed(v)} value, or a workers-derived heuristic
// otherwise. Exactly Auto means runtime-chosen; every other non-positive
// chunk keeps the historical clamp to 1, so e.g. a computed chunk that
// underflows to 0 still means "one iteration per task", not "auto".
func (tc *TC) TaskLoop(n, chunk int, body func(tc *TC, lo, hi int), clauses ...Clause) []*Handle {
	if chunk == Auto {
		chunk = tc.autoChunk(n, clauses)
	}
	if chunk < 1 {
		chunk = 1
	}
	var hs []*Handle
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		hs = append(hs, tc.spawnIters(func(c *TC) error { body(c, lo, hi); return nil }, clauses, hi-lo))
	}
	return hs
}

// autoChunk resolves a TaskLoop's Auto chunk: the controller's decision,
// the pinned Grain value, or the static heuristic (about four chunks per
// worker — enough slack for stealing without drowning in per-task cost).
func (tc *TC) autoChunk(n int, clauses []Clause) int {
	if n <= 1 {
		return 1
	}
	cfg := tc.rt.cfg
	if v, ok := cfg.tun.Grain.Value(); ok && v > 0 {
		return v
	}
	if ctl := tc.rt.be.tuner(); ctl != nil {
		spec := buildSpec(clauses)
		return ctl.ChunkFor(spec.label, n)
	}
	w := cfg.workers
	if w < 1 {
		w = 1
	}
	ch := n / (4 * w)
	if ch < 1 {
		ch = 1
	}
	return ch
}

// Taskwait blocks until this context's direct children have finished,
// helping to execute ready tasks meanwhile. Failures do not resurface
// here — consult TaskwaitCtx, Handle.Err, or Runtime.Err. Like
// TaskwaitCtx, it closes the round: failures of the awaited children are
// not re-reported by a later wait over this scope.
func (tc *TC) Taskwait() {
	tc.rt.be.taskwait(tc, tc.ctx)
	tc.ctx.TakeErr()
}

// TaskwaitCtx blocks until this context's direct children have finished or
// ctx is cancelled. Cancellation drains the graph by skipping every task
// that has not started yet (runtime-wide — a cancelled runtime skips all
// later submissions too); the wait still returns only after the children
// drained, so no awaited task is left in flight. It returns ctx's error
// after a cancellation, otherwise the first failure among this context's
// children (nil when all succeeded).
func (tc *TC) TaskwaitCtx(ctx context.Context) error {
	rt := tc.rt
	rt.observed.Store(true)
	// Cancellation scope: on a request session the context cancels that
	// session only; on the default session (and TCs inside its tasks) it
	// cancels the runtime, preserving the pre-session semantics.
	cancel := rt.cancelWith
	if s := tc.sess; s != nil && s.ephemeral {
		cancel = s.cancelWith
	}
	if ctx != nil && ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { cancel(context.Cause(ctx)) })
		defer stop()
	}
	rt.be.taskwait(tc, tc.ctx)
	// Report-and-clear: a later taskwait over the same scope reports only
	// its own round's failures, whatever this round returns.
	scopeErr := tc.ctx.TakeErr()
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return scopeErr
}

// TaskwaitOn blocks until the last writer task of each key has finished.
// Keys may be raw dependence keys, region keys (RegionKey), or registered
// *Datum handles.
func (tc *TC) TaskwaitOn(keys ...any) {
	resolved := make([]any, len(keys))
	for i, k := range keys {
		if d, ok := k.(*Datum); ok {
			resolved[i] = d.c.Key
		} else {
			resolved[i] = k
		}
	}
	tc.rt.be.taskwaitOn(tc, resolved)
}

// Critical runs f under the named global lock.
func (tc *TC) Critical(name string, f func()) { tc.rt.be.critical(tc, name, 0, f) }

// CriticalCost runs f under the named lock, modeling `hold` of work inside
// the critical section on the simulated machine (native execution ignores
// the cost — the real f supplies the real work).
func (tc *TC) CriticalCost(name string, hold time.Duration, f func()) {
	tc.rt.be.critical(tc, name, hold, f)
}

// Compute charges d of computation to the executing thread on the simulated
// machine. Native execution ignores it: the body's real work is the cost.
// Use it for data-dependent costs that the Cost clause cannot express.
func (tc *TC) Compute(d time.Duration) { tc.rt.be.compute(tc, d) }

// Touch charges the simulated memory-system cost of streaming `bytes` of the
// datum identified by key (warmth/NUMA-dependent). Native execution ignores
// it.
func (tc *TC) Touch(key any, bytes int64, write bool) { tc.rt.be.touch(tc, key, bytes, write) }

// Data resolves the instance of a renameable datum this task is bound to:
// the version current when the task was submitted (readers), or the task's
// private output instance (a renamed writer — seeded with its
// predecessor's value first when the access is InOut). Task bodies MUST go
// through Data for every datum that called EnableRenaming; for any other
// datum it returns the registered key itself, so pointer-keyed bodies can
// use it unconditionally:
//
//	buf := tc.Data(d).(*Tile)
//
// On the master TC (outside any task) it returns the canonical instance —
// current only after a Taskwait/TaskwaitOn drained the datum's accessors.
func (tc *TC) Data(d *Datum) any { return d.c.PayloadFor(tc.task) }

// critSet is the named-lock table shared by both backends' critical support.
type critSet[T any] struct {
	mu sync.Mutex
	m  map[string]*T
}

func (cs *critSet[T]) get(name string) *T {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.m == nil {
		cs.m = make(map[string]*T)
	}
	l := cs.m[name]
	if l == nil {
		l = new(T)
		cs.m[name] = l
	}
	return l
}
