// Package ompss implements the OpenMP Superscalar (OmpSs) task-dataflow
// programming model as a Go library.
//
// OmpSs extends OpenMP with the StarSs dependence clauses: functions are
// annotated as tasks whose arguments carry input/output/inout directions;
// calls add nodes to a task graph instead of executing immediately, and the
// runtime resolves dependences and schedules ready tasks onto worker
// threads. This package is a from-scratch reproduction of that model as
// evaluated in Andersch, Chi & Juurlink, "Programming Parallel Embedded and
// Consumer Applications in OpenMP Superscalar" (PPoPP 2012): the pragma
//
//	#pragma omp task input(*a) inout(*b) output(*c)
//	work(a, b, c);
//
// becomes
//
//	rt.Task(func(tc *ompss.TC) { work(a, b, c) },
//	        ompss.In(a), ompss.InOut(b), ompss.Out(c))
//
// Two execution backends share the same dependence tracker and scheduler
// (internal/core):
//
//   - New creates a native runtime executing on goroutine workers.
//   - RunSim executes a program on a simulated cc-NUMA machine
//     (package machine), reproducing the paper's 1–32 core sweep on any
//     host.
//
// As in OmpSs, the master thread participates in execution: with Workers(n),
// n−1 dedicated workers are started and the program thread helps execute
// tasks inside Taskwait, TaskwaitOn, and Shutdown. Polling wait mode (the
// OmpSs default, paper §4/§5) busy-waits between tasks; Blocking parks idle
// threads on a condition variable.
package ompss

import (
	"fmt"
	"sync"
	"time"

	"ompssgo/internal/core"
)

// WaitMode selects how idle workers and waiters behave.
type WaitMode int

const (
	// Polling busy-waits (the OmpSs runtime default): lowest release
	// latency, but cores stay occupied even without work (paper §5).
	Polling WaitMode = iota
	// Blocking parks idle threads on a condition variable, paying an OS
	// wake latency on release (the Pthreads-style default).
	Blocking
)

func (m WaitMode) String() string {
	if m == Blocking {
		return "blocking"
	}
	return "polling"
}

// config collects runtime options.
type config struct {
	workers  int
	wait     WaitMode
	locality bool
	seed     int64
	tracer   *Tracer
}

// Option configures a Runtime.
type Option func(*config)

// Workers sets the total thread count (master + dedicated workers), like
// OMP_NUM_THREADS. Defaults to 1 for New (callers size explicitly) and to
// the machine's core count for RunSim.
func Workers(n int) Option { return func(c *config) { c.workers = n } }

// Wait selects the idle-wait policy (default Polling, as in OmpSs).
func Wait(m WaitMode) Option { return func(c *config) { c.wait = m } }

// Locality toggles locality-aware scheduling: successors released by a
// finishing task are placed at the head of the finishing worker's queue so
// producer→consumer chains run back-to-back on one core (default true; the
// paper's ray-rot analysis credits this policy).
func Locality(on bool) Option { return func(c *config) { c.locality = on } }

// Seed fixes the scheduler's steal-victim RNG.
func Seed(s int64) Option { return func(c *config) { c.seed = s } }

// Trace attaches a Tracer that records task lifecycle events for the DOT
// export and scheduling analysis.
func Trace(tr *Tracer) Option { return func(c *config) { c.tracer = tr } }

func buildConfig(opts []Option) config {
	// workers == 0 means "unset": New defaults to 1, RunSim to the
	// simulated machine's core count.
	c := config{wait: Polling, locality: true, seed: 1}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// backend abstracts the native and simulated executors. All engine state
// (graph, scheduler) lives behind it.
type backend interface {
	submit(from *TC, t *core.Task)
	taskwait(from *TC, ctx *core.Context)
	taskwaitOn(from *TC, keys []any)
	critical(from *TC, name string, hold time.Duration, f func())
	commutative(from *TC, key any, f func())
	compute(from *TC, d time.Duration)
	touch(from *TC, key any, bytes int64, write bool)
	lastWriter(key any) *core.Task
	shutdown(from *TC)
	stats() RunStats
}

// TaskPanic is the error value rethrown by Taskwait/Shutdown after a task
// body panicked: a panicking task poisons the runtime (its dependents still
// release, so the graph drains), and the first panic resurfaces on the
// waiting thread.
type TaskPanic struct {
	Label string // the task's Label clause, if any
	Value any    // the original panic value
}

func (p *TaskPanic) Error() string {
	if p.Label != "" {
		return fmt.Sprintf("ompss: task %q panicked: %v", p.Label, p.Value)
	}
	return fmt.Sprintf("ompss: task panicked: %v", p.Value)
}

// Runtime is an OmpSs runtime instance. Create with New (native execution)
// or receive one inside RunSim (simulated execution). Methods on Runtime act
// on behalf of the program's master thread; inside task bodies, use the TC
// methods instead.
type Runtime struct {
	be   backend
	main *TC
	cfg  config

	panicMu   sync.Mutex
	taskPanic *TaskPanic // first task panic; rethrown at the next wait
	simMode   bool       // sim runs return the panic from RunSim instead of rethrowing
}

// recordPanic stores the first task panic (later ones are dropped — the
// runtime is already poisoned).
func (rt *Runtime) recordPanic(p *TaskPanic) {
	rt.panicMu.Lock()
	if rt.taskPanic == nil {
		rt.taskPanic = p
	}
	rt.panicMu.Unlock()
}

// checkPanic rethrows a recorded task panic on the waiting thread. In
// simulated runs the panic is reported as RunSim's error instead —
// unwinding a virtual thread would tear the simulation down with it.
func (rt *Runtime) checkPanic() {
	if rt.simMode {
		return
	}
	rt.panicMu.Lock()
	p := rt.taskPanic
	rt.panicMu.Unlock()
	if p != nil {
		panic(p)
	}
}

// RunStats reports engine activity counters.
type RunStats struct {
	Graph core.GraphStats
	Sched core.SchedStats
}

// Task spawns a task from the master thread. The body runs once its
// dependences (declared via In/Out/InOut clauses) are satisfied.
func (rt *Runtime) Task(body func(*TC), clauses ...Clause) { rt.main.Task(body, clauses...) }

// Taskwait blocks until all tasks spawned by the master thread (and not by
// nested tasks) have finished. The master helps execute ready tasks while
// waiting (polling mode), as the OmpSs master thread does.
func (rt *Runtime) Taskwait() { rt.main.Taskwait() }

// TaskwaitOn blocks until the current last writer of each key has finished —
// the `#pragma omp taskwait on(...)` of Listing 1, used to let the EOF
// condition of a pipelined loop depend on the read stage only.
func (rt *Runtime) TaskwaitOn(keys ...any) { rt.main.TaskwaitOn(keys...) }

// Critical runs f under the named global lock (`#pragma omp critical`).
func (rt *Runtime) Critical(name string, f func()) { rt.main.Critical(name, f) }

// TaskLoop spawns chunked loop tasks from the master thread (see
// TC.TaskLoop).
func (rt *Runtime) TaskLoop(n, chunk int, body func(tc *TC, lo, hi int), clauses ...Clause) {
	rt.main.TaskLoop(n, chunk, body, clauses...)
}

// Stats returns engine activity counters. Call after a Taskwait for a
// consistent snapshot.
func (rt *Runtime) Stats() RunStats { return rt.be.stats() }

// Shutdown drains all outstanding tasks (the implicit end-of-program
// barrier) and stops the workers. The native runtime requires it; RunSim
// calls it automatically when the program returns. Idempotent. A recorded
// task panic resurfaces here if no Taskwait rethrew it earlier.
func (rt *Runtime) Shutdown() {
	rt.be.shutdown(rt.main)
	rt.checkPanic()
}

// New creates a native runtime executing on goroutines.
func New(opts ...Option) *Runtime {
	cfg := buildConfig(opts)
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	rt := &Runtime{cfg: cfg}
	nb := newNativeBackend(rt, cfg)
	rt.be = nb
	rt.main = &TC{rt: rt, ctx: &core.Context{}, worker: nb.masterLane()}
	nb.start()
	return rt
}

// TC is the task context handed to task bodies and representing the master
// thread on a Runtime. It identifies the executing worker and carries the
// nesting scope for nested tasks and taskwait.
type TC struct {
	rt     *Runtime
	ctx    *core.Context // children spawned from this scope
	task   *core.Task    // nil for the master TC
	worker int
	final  bool // inside a final task: all nested tasks run undeferred
}

// InFinal reports whether this context executes inside a final task (every
// nested task runs undeferred here).
func (tc *TC) InFinal() bool { return tc.final }

// Worker returns the lane (worker index) executing this context. The master
// thread owns the highest lane.
func (tc *TC) Worker() int { return tc.worker }

// Runtime returns the owning runtime.
func (tc *TC) Runtime() *Runtime { return tc.rt }

// Task spawns a nested task whose completion is covered by this context's
// Taskwait.
func (tc *TC) Task(body func(*TC), clauses ...Clause) {
	spec := buildSpec(clauses)
	if !spec.enabled || tc.final {
		// If(false) or inside a final task: undeferred execution in the
		// spawning thread, as in OmpSs. Costs are charged to the current
		// thread in simulation.
		tc.rt.be.compute(tc, spec.cost)
		for _, a := range spec.accesses {
			tc.rt.be.touch(tc, a.Key, a.Bytes, a.Writes())
		}
		child := &TC{rt: tc.rt, ctx: &core.Context{Depth: tc.ctx.Depth + 1},
			worker: tc.worker, final: tc.final || spec.final}
		body(child)
		return
	}
	ct := &core.Task{
		Label:    spec.label,
		Priority: spec.priority,
		CPUCost:  int64(spec.cost),
		Accesses: spec.accesses,
		Parent:   tc.ctx,
	}
	var commKeys []any
	for _, a := range spec.accesses {
		if a.Mode == core.Commutative {
			if _, isRegion := a.Key.(core.Region); !isRegion {
				commKeys = append(commKeys, a.Key)
			}
		}
	}
	child := &TC{rt: tc.rt, ctx: &core.Context{Depth: tc.ctx.Depth + 1},
		task: ct, final: spec.final}
	label := spec.label
	ct.Body = func() {
		child.worker = ct.Worker
		defer func() {
			if r := recover(); r != nil {
				tc.rt.recordPanic(&TaskPanic{Label: label, Value: r})
			}
		}()
		run := func() { body(child) }
		// Commutative mutual exclusion: nest per-key locks around the
		// body, innermost = last declared.
		for i := len(commKeys) - 1; i >= 0; i-- {
			k := commKeys[i]
			inner := run
			run = func() { tc.rt.be.commutative(child, k, inner) }
		}
		run()
	}
	tc.rt.be.submit(tc, ct)
}

// TaskLoop partitions the iteration space [0, n) into chunks of at most
// `chunk` iterations and spawns one task per chunk — the OmpSs/OpenMP
// taskloop construct. The clauses apply to every chunk task (use OutRegion
// and friends with per-chunk ranges inside `clauses` builders when chunks
// touch distinct data; for independent chunks no clauses are needed).
// TaskLoop does not wait; pair with Taskwait.
func (tc *TC) TaskLoop(n, chunk int, body func(tc *TC, lo, hi int), clauses ...Clause) {
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		tc.Task(func(c *TC) { body(c, lo, hi) }, clauses...)
	}
}

// Taskwait blocks until this context's direct children have finished,
// helping to execute ready tasks meanwhile. If a task body panicked, the
// panic resurfaces here as a *TaskPanic.
func (tc *TC) Taskwait() {
	tc.rt.be.taskwait(tc, tc.ctx)
	tc.rt.checkPanic()
}

// TaskwaitOn blocks until the last writer task of each key has finished.
func (tc *TC) TaskwaitOn(keys ...any) {
	tc.rt.be.taskwaitOn(tc, keys)
	tc.rt.checkPanic()
}

// Critical runs f under the named global lock.
func (tc *TC) Critical(name string, f func()) { tc.rt.be.critical(tc, name, 0, f) }

// CriticalCost runs f under the named lock, modeling `hold` of work inside
// the critical section on the simulated machine (native execution ignores
// the cost — the real f supplies the real work).
func (tc *TC) CriticalCost(name string, hold time.Duration, f func()) {
	tc.rt.be.critical(tc, name, hold, f)
}

// Compute charges d of computation to the executing thread on the simulated
// machine. Native execution ignores it: the body's real work is the cost.
// Use it for data-dependent costs that the Cost clause cannot express.
func (tc *TC) Compute(d time.Duration) { tc.rt.be.compute(tc, d) }

// Touch charges the simulated memory-system cost of streaming `bytes` of the
// datum identified by key (warmth/NUMA-dependent). Native execution ignores
// it.
func (tc *TC) Touch(key any, bytes int64, write bool) { tc.rt.be.touch(tc, key, bytes, write) }

// critSet is the named-lock table shared by both backends' critical support.
type critSet[T any] struct {
	mu sync.Mutex
	m  map[string]*T
}

func (cs *critSet[T]) get(name string) *T {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.m == nil {
		cs.m = make(map[string]*T)
	}
	l := cs.m[name]
	if l == nil {
		l = new(T)
		cs.m[name] = l
	}
	return l
}
