package ompss

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ompssgo/internal/core"
	"ompssgo/internal/obs"
	"ompssgo/internal/tune"
)

// nativeBackend executes tasks on goroutine workers. With Workers(n), n−1
// dedicated workers run lanes 0..n−2; the program's master thread owns lane
// n−1 and helps execute tasks inside Taskwait/TaskwaitOn/Shutdown, matching
// the OmpSs thread model (OMP_NUM_THREADS counts the master).
//
// There is no backend-level engine lock: the engine (internal/core, shared
// with the simulated backend) is internally decentralized — per-worker
// lock-free deques with work stealing, a sharded dependence tracker, and
// atomic ready release — so submit, pop, steal, and finish from different
// lanes proceed without serializing on each other. The only backend
// synchronization is the Blocking-mode idle gate, a monitor that idle
// workers and taskwaiters park on; Polling mode (the OmpSs default) never
// touches it.
type nativeBackend struct {
	rt  *Runtime
	cfg config

	graph *core.Graph
	sched *core.Sched
	stop  atomic.Bool
	gate  idleGate // Blocking mode: idle workers and taskwaiters

	// tn/ctl are the feedback-control plane (nil when no Tuning field
	// armed it): ctl consumes measured task completions and writes
	// setpoints into tn, which the graph's rename-cap check and the
	// polling spinner read. tn may also be non-nil alone, carrying a
	// pinned StealBackoff without a controller.
	tn  *core.Tunables
	ctl *tune.Controller

	wg    sync.WaitGroup
	crit  critSet[sync.Mutex]
	epoch time.Time
	comm  commTable[sync.Mutex] // per-key commutative locks, rank-ordered

	shutdownOnce sync.Once
}

// idleGate parks Blocking-mode threads between work. The sequence number
// makes sleeps race-free without holding any lock on the work path: a
// would-be sleeper takes a ticket, re-checks for work, and sleeps only
// while the sequence is unchanged; every wake bumps the sequence, so a wake
// that lands between the ticket and the sleep turns the sleep into a no-op.
type idleGate struct {
	mu   sync.Mutex
	cond *sync.Cond
	seq  atomic.Uint64 // atomic so ticket() stays off the mutex on the hot path
}

func (g *idleGate) init() { g.cond = sync.NewCond(&g.mu) }

func (g *idleGate) ticket() uint64 { return g.seq.Load() }

func (g *idleGate) wait(ticket uint64) {
	g.mu.Lock()
	for g.seq.Load() == ticket {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// wake bumps the sequence under the monitor lock and broadcasts. Broadcast
// (not Signal) is deliberate: workers and taskwaiters share the condvar,
// and a Signal could wake a waiter that cannot consume the event.
func (g *idleGate) wake() {
	g.mu.Lock()
	g.seq.Add(1)
	g.cond.Broadcast()
	g.mu.Unlock()
}

// spinner is the Polling-mode idle throttle: a thread that keeps missing
// yields its slice for a while, then sleeps with linearly growing duration
// (capped at 100µs). Without it, oversubscribed polling threads — 32 lanes
// on a 2-core host — spin the cores bare and starve the lanes doing real
// work; with it, release latency stays in the tens of microseconds, which
// is the polling-vs-blocking gap the paper's §4 measures.
//
// With a Tunables block installed (tn non-nil), the yield budget and sleep
// cap are read per miss from the controller's setpoints — one atomic load
// each on the idle path only — so Tuning{StealBackoff: Auto} can deepen
// the backoff when the steal matrix reports mostly failed probes.
type spinner struct {
	misses int
	tn     *core.Tunables
}

const (
	spinYields     = 64
	spinSleepCapNS = 100_000
)

func (s *spinner) hit() { s.misses = 0 }

func (s *spinner) miss() {
	yields, capNS := spinYields, int64(spinSleepCapNS)
	if tn := s.tn; tn != nil {
		if y := tn.SpinYields.Load(); y > 0 {
			yields = int(y)
		}
		if c := tn.SleepCapNS.Load(); c > 0 {
			capNS = c
		}
	}
	s.misses++
	if s.misses <= yields {
		runtime.Gosched()
		return
	}
	d := time.Duration(s.misses-yields) * time.Microsecond
	if d > time.Duration(capNS) {
		d = time.Duration(capNS)
	}
	time.Sleep(d)
}

func newNativeBackend(rt *Runtime, cfg config) *nativeBackend {
	b := &nativeBackend{
		rt:    rt,
		cfg:   cfg,
		graph: core.NewGraph(),
		sched: core.NewSched(cfg.workers, cfg.schedPolicy(), cfg.seed),
		epoch: time.Now(),
	}
	b.graph.ConfigureRenaming(core.Renaming{Enabled: cfg.renamingOn(), MaxVersions: cfg.renameCapN()})
	if cfg.tuningActive() || cfg.tun.StealBackoff.IsSet() {
		b.tn = &core.Tunables{}
		if v, ok := cfg.tun.StealBackoff.Value(); ok && v > 0 {
			// Pinned backoff: the sleep cap is set once and no loop moves it.
			b.tn.SleepCapNS.Store(int64(v) * 1000)
		}
		if cfg.tuningActive() {
			b.ctl = tune.New(tune.Config{
				Workers:       cfg.workers,
				Grain:         cfg.tun.Grain.IsAuto(),
				Backoff:       cfg.tun.StealBackoff.IsAuto(),
				RenameCap:     cfg.tun.RenameCap.IsAuto(),
				BaseRenameCap: cfg.renameCapN(),
				SchedStats:    b.sched.Stats,
				GraphStats:    b.graph.Stats,
				Event:         tuneEventFn(cfg.rec),
			}, b.tn, obs.NewAggregator(0))
		}
		b.graph.SetTunables(b.tn)
		b.sched.SetTunables(b.tn)
	}
	if rec := cfg.rec; rec != nil {
		// Attach before any worker starts: the rings and clock are
		// published to the worker goroutines by their go statements.
		epoch := b.epoch
		rec.Attach(cfg.workers, "native", false, func() int64 { return int64(time.Since(epoch)) })
		b.graph.SetProbe(rec)
		b.sched.SetProbe(rec)
	}
	b.gate.init()
	return b
}

func (b *nativeBackend) masterLane() int { return b.cfg.workers - 1 }

func (b *nativeBackend) start() {
	for lane := 0; lane < b.cfg.workers-1; lane++ {
		b.wg.Add(1)
		go b.workerLoop(lane)
	}
}

func (b *nativeBackend) workerLoop(lane int) {
	defer b.wg.Done()
	blocking := b.cfg.wait == Blocking
	rec := b.cfg.rec
	idle := spinner{tn: b.tn}
	idling := false
	for {
		var ticket uint64
		if blocking {
			ticket = b.gate.ticket()
		}
		t := b.sched.Pop(lane)
		if t == nil {
			if !idling {
				idling = true
				if rec != nil {
					rec.Emit(lane, obs.EvIdleEnter, 0, 0)
				}
			}
			if b.stop.Load() {
				if rec != nil {
					rec.Emit(lane, obs.EvIdleExit, 0, 0)
				}
				return
			}
			if blocking {
				b.gate.wait(ticket)
			} else {
				idle.miss()
			}
			continue
		}
		if idling {
			idling = false
			if rec != nil {
				rec.Emit(lane, obs.EvIdleExit, 0, 0)
			}
		}
		idle.hit()
		b.graph.MarkRunning(t, lane)
		b.runTask(t, lane)
	}
}

func (b *nativeBackend) runTask(t *core.Task, lane int) {
	rec := b.cfg.rec
	quiet := taskQuiet(t)
	if rec != nil && !quiet {
		rec.Emit(lane, obs.EvStart, t.ID, 0)
	}
	var err error
	var t0 int64
	skipped := false
	if skip := b.rt.skipReason(t); skip != nil {
		// Skip-release: the task finishes without running, its dependents
		// still release (and inherit the error under SkipDependents), so
		// the graph always drains.
		t.MarkSkipped()
		b.graph.CountSkipped()
		if rec != nil && !quiet {
			rec.Emit(lane, obs.EvSkip, t.ID, 0)
		}
		err = skip
		skipped = true
	} else {
		if b.ctl != nil {
			t0 = int64(time.Since(b.epoch))
		}
		err = t.Body()
	}
	b.rt.noteTaskErr(t, err)
	// Finish retires the task: a concurrently closing session may recycle it
	// the moment its in-flight count drops, so everything the post-finish
	// paths report is read out first.
	id, label, iters := t.ID, t.Label, t.Iters
	renamed, renameFallback := t.Renamed(), t.RenameFallback()
	ready := b.graph.Finish(t, err)
	if b.ctl != nil && !skipped {
		// Feed the controller with the task's measured execution time and
		// rename attribution; every TickEvery-th call runs a control tick
		// inline on this lane. Allocation-free (asserted by the alloc-budget
		// suite) so tuning never perturbs what it measures.
		end := int64(time.Since(b.epoch))
		b.ctl.TaskDone(label, end-t0, iters, renamed, renameFallback)
	}
	if rec != nil {
		// The end event and the ready events of the released successors
		// share the completion instant — one group, one clock read, one
		// sequence fetch-add for the whole site. Muted (Observe(nil))
		// sessions' tasks are filtered out before the group is sized.
		obsFinish(rec, lane, id, quiet, ready)
	}
	for _, r := range ready {
		b.sched.PushReady(r, lane)
	}
	if b.cfg.wait == Blocking {
		// Wake idle workers for the released tasks and any taskwaiter
		// whose context may have drained.
		b.gate.wake()
	}
}

// helpOne lets the calling thread execute one ready task, reporting whether
// it found any.
func (b *nativeBackend) helpOne(lane int) bool {
	t := b.sched.Pop(lane)
	if t == nil {
		return false
	}
	b.graph.MarkRunning(t, lane)
	b.runTask(t, lane)
	return true
}

func (b *nativeBackend) submit(from *TC, t *core.Task) {
	ready := b.graph.Submit(t)
	// Submit/edge events go out before the push so the task cannot start
	// (on another lane) ahead of its own submit record in the usual case;
	// a predecessor finishing mid-submission can still reorder, which the
	// analyzer tolerates.
	obsSubmit(b.cfg.rec, from.worker, t, ready)
	if ready {
		b.sched.PushSubmit(t)
		if b.cfg.wait == Blocking {
			b.gate.wake()
		}
	}
}

func (b *nativeBackend) submitBatch(from *TC, ts []*core.Task) {
	ready := b.graph.SubmitBatch(ts)
	obsSubmitBatch(b.cfg.rec, from.worker, ts, ready)
	if len(ready) > 0 {
		b.sched.PushSubmitBatch(ready)
		if b.cfg.wait == Blocking {
			b.gate.wake()
		}
	}
}

// tuneEventFn bridges the feedback controller's setpoint moves into the
// observability stream: every actual move becomes an EvTune event (Label =
// the loop name, Arg = old value, Task = new value) on the no-lane ring.
// Nil recorder → nil hook, so an untraced run pays nothing. The loop names
// are constants and EmitLabel allocates nothing, keeping the tick path
// within its zero-alloc budget. Shared by both backends.
func tuneEventFn(rec *obs.Recorder) func(loop string, old, new int64) {
	if rec == nil {
		return nil
	}
	return func(loop string, old, new int64) {
		rec.EmitLabel(-1, obs.EvTune, uint64(new), uint64(old), loop)
	}
}

// taskQuiet reports whether the task's session muted per-task observability
// (Session Observe(nil) under a recording runtime). Shared by both backends.
func taskQuiet(t *core.Task) bool {
	d := t.Domain
	return d != nil && d.Quiet
}

// sessOf returns the task's session ID for trace tagging (0 = no session).
func sessOf(t *core.Task) uint64 {
	if d := t.Domain; d != nil {
		return d.ID
	}
	return 0
}

// obsFinish records a task completion: the end event and the ready events of
// the released successors share one group (one clock read, one sequence
// fetch-add). Quiet tasks are filtered out before the group is sized, so a
// muted session contributes no events at all. Shared by both backends.
func obsFinish(rec *obs.Recorder, worker int, id uint64, quiet bool, ready []*core.Task) {
	n := 0
	if !quiet {
		n++
	}
	for _, r := range ready {
		if !taskQuiet(r) {
			n++
		}
	}
	if n == 0 {
		return
	}
	g, ok := rec.Group(worker, n)
	if !ok {
		return
	}
	if !quiet {
		g.Add(obs.EvEnd, id, 0, "")
	}
	for _, r := range ready {
		if !taskQuiet(r) {
			g.Add(obs.EvReady, r.ID, 0, "")
		}
	}
}

// obsSubmitBatch records a whole batch submission as one group — the
// observability counterpart of SubmitBatch's amortized locking. Shared by
// both backends.
func obsSubmitBatch(rec *obs.Recorder, worker int, ts, ready []*core.Task) {
	if rec == nil {
		return
	}
	n := 0
	for _, t := range ts {
		if !taskQuiet(t) {
			n += 1 + len(t.Preds)
		}
	}
	for _, t := range ready {
		if !taskQuiet(t) {
			n++
		}
	}
	if n == 0 {
		return
	}
	g, ok := rec.Group(worker, n)
	if !ok {
		return
	}
	for _, t := range ts {
		if taskQuiet(t) {
			continue
		}
		g.AddSess(obs.EvSubmit, t.ID, uint64(len(t.Preds)), sessOf(t), t.Label)
		for _, p := range t.Preds {
			g.Add(obs.EvEdge, t.ID, p, "")
		}
	}
	for _, t := range ready {
		if !taskQuiet(t) {
			g.Add(obs.EvReady, t.ID, 0, "")
		}
	}
}

// obsSubmit records one task submission: the submit event (Arg = wired
// predecessor count, Sess = the owning session), one edge event per
// predecessor, and — when the task was immediately runnable — its ready
// event. The whole site shares one group (one clock read, one sequence
// fetch-add). Shared by both backends.
func obsSubmit(rec *obs.Recorder, worker int, t *core.Task, ready bool) {
	if rec == nil || taskQuiet(t) {
		return
	}
	n := 1 + len(t.Preds)
	if ready {
		n++
	}
	g, ok := rec.Group(worker, n)
	if !ok {
		return
	}
	g.AddSess(obs.EvSubmit, t.ID, uint64(len(t.Preds)), sessOf(t), t.Label)
	for _, p := range t.Preds {
		g.Add(obs.EvEdge, t.ID, p, "")
	}
	if ready {
		g.Add(obs.EvReady, t.ID, 0, "")
	}
}

func (b *nativeBackend) taskwait(from *TC, ctx *core.Context) {
	if rec := b.cfg.rec; rec != nil {
		rec.Emit(from.worker, obs.EvTaskwaitEnter, 0, 0)
		defer rec.Emit(from.worker, obs.EvTaskwaitExit, 0, 0)
	}
	idle := spinner{tn: b.tn}
	for ctx.Pending() > 0 {
		if b.helpOne(from.worker) {
			idle.hit()
			continue
		}
		if b.cfg.wait == Blocking {
			ticket := b.gate.ticket()
			if ctx.Pending() > 0 && b.sched.Ready() == 0 {
				b.gate.wait(ticket)
			}
		} else {
			idle.miss()
		}
	}
}

// waitFor parks the calling thread until cond holds, executing ready tasks
// meanwhile (the same help-first discipline as taskwait, generalized to an
// arbitrary predicate — session drains and admission backpressure use it).
// cond must eventually hold through task completions or a cancellation;
// every task finish and cancelWake re-checks it via the gate sequence.
func (b *nativeBackend) waitFor(from *TC, cond func() bool) {
	idle := spinner{tn: b.tn}
	for !cond() {
		if b.helpOne(from.worker) {
			idle.hit()
			continue
		}
		if b.cfg.wait == Blocking {
			ticket := b.gate.ticket()
			if !cond() && b.sched.Ready() == 0 {
				b.gate.wait(ticket)
			}
		} else {
			idle.miss()
		}
	}
}

func (b *nativeBackend) taskwaitOn(from *TC, keys []any) {
	if rec := b.cfg.rec; rec != nil {
		rec.Emit(from.worker, obs.EvTaskwaitEnter, 0, 0)
		defer rec.Emit(from.worker, obs.EvTaskwaitExit, 0, 0)
	}
	for _, k := range keys {
		for _, lw := range b.graph.Writers(k) {
			// Help-first in both wait modes: parking on the task's Done
			// channel without helping deadlocks when every OS thread is a
			// waiter (workers=1, or a server whose request goroutines all
			// reach a taskwait-on together).
			b.waitFor(from, lw.Finished)
		}
	}
}

func (b *nativeBackend) critical(from *TC, name string, hold time.Duration, f func()) {
	l := b.crit.get(name)
	l.Lock()
	// Deferred so a panicking body (recovered into a task error above us)
	// cannot leak the named lock and deadlock every later Critical user —
	// the same discipline commutative uses.
	defer l.Unlock()
	f()
	_ = hold // the real f supplies the real work natively
}

// commutative runs f holding the per-key locks of every listed key,
// acquired in ascending rank order (see commTable), released in reverse.
func (b *nativeBackend) commutative(from *TC, keys []any, f func()) {
	locks := b.comm.resolve(keys)
	for _, l := range locks {
		l.mu.Lock()
	}
	// Deferred so a panicking body (recovered into a task error above us)
	// cannot leak the locks and deadlock later commutative tasks.
	defer func() {
		for i := len(locks) - 1; i >= 0; i-- {
			locks[i].mu.Unlock()
		}
	}()
	f()
}

func (b *nativeBackend) compute(*TC, time.Duration)  {} // native bodies do real work
func (b *nativeBackend) touch(*TC, any, int64, bool) {} // native memory is real
func (b *nativeBackend) deps() *core.Graph           { return b.graph }

// core.Backend seam (see internal/core/backend.go).
func (b *nativeBackend) DomainName() string          { return "native" }
func (b *nativeBackend) Deps() *core.Graph           { return b.graph }
func (b *nativeBackend) GraphStats() core.GraphStats { return b.graph.Stats() }

var _ core.Backend = (*nativeBackend)(nil)

// cancelWake nudges Blocking-mode parked threads so they re-check for work
// after a cancellation put the runtime into skip mode. Safe from any
// goroutine (context.AfterFunc fires on a timer goroutine).
func (b *nativeBackend) cancelWake() {
	if b.cfg.wait == Blocking {
		b.gate.wake()
	}
}

func (b *nativeBackend) shutdown(from *TC) {
	b.shutdownOnce.Do(func() {
		// Implicit end-of-program barrier: drain every context.
		idle := spinner{tn: b.tn}
		for b.graph.Unfinished() > 0 {
			if b.helpOne(from.worker) {
				idle.hit()
			} else {
				idle.miss()
			}
		}
		b.stop.Store(true)
		if b.cfg.wait == Blocking {
			b.gate.wake()
		}
		b.wg.Wait()
	})
}

func (b *nativeBackend) tuner() *tune.Controller { return b.ctl }

func (b *nativeBackend) stats() RunStats {
	return RunStats{Graph: b.graph.Stats(), Sched: b.sched.Stats(), Labels: labelStatsOf(b.ctl)}
}
