package ompss

import (
	"runtime"
	"sync"
	"time"

	"ompssgo/internal/core"
)

// nativeBackend executes tasks on goroutine workers. With Workers(n), n−1
// dedicated workers run lanes 0..n−2; the program's master thread owns lane
// n−1 and helps execute tasks inside Taskwait/TaskwaitOn/Shutdown, matching
// the OmpSs thread model (OMP_NUM_THREADS counts the master).
//
// All engine state is guarded by one scheduler lock; the engine itself
// (internal/core) is a pure state machine shared with the simulated backend.
type nativeBackend struct {
	rt  *Runtime
	cfg config

	mu    sync.Mutex
	cond  *sync.Cond // Blocking mode: idle workers and taskwaiters
	graph *core.Graph
	sched *core.Sched
	stop  bool

	wg    sync.WaitGroup
	crit  critSet[sync.Mutex]
	epoch time.Time

	commMu sync.Mutex
	comm   map[any]*sync.Mutex // per-key commutative locks

	shutdownOnce sync.Once
}

func newNativeBackend(rt *Runtime, cfg config) *nativeBackend {
	b := &nativeBackend{
		rt:    rt,
		cfg:   cfg,
		graph: core.NewGraph(),
		sched: core.NewSched(cfg.workers, cfg.locality, cfg.seed),
		epoch: time.Now(),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *nativeBackend) masterLane() int { return b.cfg.workers - 1 }

func (b *nativeBackend) start() {
	for lane := 0; lane < b.cfg.workers-1; lane++ {
		b.wg.Add(1)
		go b.workerLoop(lane)
	}
}

func (b *nativeBackend) workerLoop(lane int) {
	defer b.wg.Done()
	for {
		b.mu.Lock()
		t := b.sched.Pop(lane)
		if t == nil {
			if b.stop {
				b.mu.Unlock()
				return
			}
			if b.cfg.wait == Blocking {
				b.cond.Wait()
				b.mu.Unlock()
				continue
			}
			b.mu.Unlock()
			runtime.Gosched()
			continue
		}
		b.graph.MarkRunning(t, lane)
		b.mu.Unlock()
		b.runTask(t, lane)
	}
}

func (b *nativeBackend) runTask(t *core.Task, lane int) {
	b.trace(TraceStart, t, lane)
	t.Body()
	b.mu.Lock()
	ready := b.graph.Finish(t)
	for _, r := range ready {
		b.sched.PushReady(r, lane)
	}
	if b.cfg.wait == Blocking {
		// Wake idle workers for the released tasks and any taskwaiter
		// whose context may have drained.
		b.cond.Broadcast()
	}
	b.mu.Unlock()
	b.trace(TraceEnd, t, lane)
}

// helpOne lets the calling thread execute one ready task, reporting whether
// it found any.
func (b *nativeBackend) helpOne(lane int) bool {
	b.mu.Lock()
	t := b.sched.Pop(lane)
	if t == nil {
		b.mu.Unlock()
		return false
	}
	b.graph.MarkRunning(t, lane)
	b.mu.Unlock()
	b.runTask(t, lane)
	return true
}

func (b *nativeBackend) submit(from *TC, t *core.Task) {
	b.mu.Lock()
	if b.graph.Submit(t) {
		b.sched.PushSubmit(t)
		if b.cfg.wait == Blocking {
			b.cond.Signal()
		}
	}
	b.mu.Unlock()
	b.trace(TraceSubmit, t, from.worker)
}

func (b *nativeBackend) taskwait(from *TC, ctx *core.Context) {
	for ctx.Pending() > 0 {
		if b.helpOne(from.worker) {
			continue
		}
		if b.cfg.wait == Blocking {
			b.mu.Lock()
			if ctx.Pending() > 0 && b.sched.Ready() == 0 {
				b.cond.Wait()
			}
			b.mu.Unlock()
		} else {
			runtime.Gosched()
		}
	}
}

func (b *nativeBackend) taskwaitOn(from *TC, keys []any) {
	for _, k := range keys {
		b.mu.Lock()
		writers := b.graph.Writers(k)
		b.mu.Unlock()
		for _, lw := range writers {
			if b.cfg.wait == Blocking {
				<-lw.Done()
				continue
			}
			for !lw.Finished() {
				if !b.helpOne(from.worker) {
					runtime.Gosched()
				}
			}
		}
	}
}

func (b *nativeBackend) critical(from *TC, name string, hold time.Duration, f func()) {
	l := b.crit.get(name)
	l.Lock()
	f()
	l.Unlock()
	_ = hold // the real f supplies the real work natively
}

func (b *nativeBackend) commutative(from *TC, key any, f func()) {
	b.commMu.Lock()
	if b.comm == nil {
		b.comm = make(map[any]*sync.Mutex)
	}
	l := b.comm[key]
	if l == nil {
		l = &sync.Mutex{}
		b.comm[key] = l
	}
	b.commMu.Unlock()
	l.Lock()
	f()
	l.Unlock()
}

func (b *nativeBackend) compute(*TC, time.Duration)  {} // native bodies do real work
func (b *nativeBackend) touch(*TC, any, int64, bool) {} // native memory is real
func (b *nativeBackend) lastWriter(key any) *core.Task {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.graph.LastWriter(key)
}

func (b *nativeBackend) shutdown(from *TC) {
	b.shutdownOnce.Do(func() {
		// Implicit end-of-program barrier: drain every context.
		for b.graph.Unfinished() > 0 {
			if !b.helpOne(from.worker) {
				runtime.Gosched()
			}
		}
		b.mu.Lock()
		b.stop = true
		b.cond.Broadcast()
		b.mu.Unlock()
		b.wg.Wait()
	})
}

func (b *nativeBackend) stats() RunStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return RunStats{Graph: b.graph.Stats(), Sched: b.sched.Stats()}
}

func (b *nativeBackend) trace(kind TraceKind, t *core.Task, lane int) {
	if tr := b.cfg.tracer; tr != nil {
		tr.record(kind, t, lane, time.Since(b.epoch))
	}
}
