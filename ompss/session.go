package ompss

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"ompssgo/internal/core"
)

// ErrSessionClosed is the cause wrapped into the outcome of every task a
// session Close released without running, and into the pre-failed handles
// returned by spawns attempted after Close. Match with errors.Is.
var ErrSessionClosed = errors.New("ompss: session closed")

// ErrAdmission is the cause wrapped into the pre-failed handle of a spawn
// rejected by admission control (RejectOnFull with the session or global
// in-flight budget exhausted). Match with errors.Is.
var ErrAdmission = errors.New("ompss: admission limit reached")

// AdmissionMode selects what a spawn does when the session's (or the
// runtime's global) in-flight budget is exhausted.
type AdmissionMode int

const (
	// BlockOnFull (the default) makes the spawning thread wait for
	// headroom, helping to execute ready tasks meanwhile — backpressure
	// that keeps the submitter productive, as taskwait does.
	BlockOnFull AdmissionMode = iota
	// RejectOnFull returns a pre-failed Handle whose Err wraps
	// ErrAdmission; nothing is submitted. Load-shedding for servers that
	// prefer a fast 429 over queueing.
	RejectOnFull
)

func (m AdmissionMode) String() string {
	if m == RejectOnFull {
		return "reject-on-full"
	}
	return "block-on-full"
}

// Tenant assigns the session's tenant class: a priority boost added to
// every task the session spawns, mapping tenants onto the scheduler's
// priority lanes (a class-2 session's tasks outrank a class-0 session's
// ready tasks at every dispatch point). Valid at New (boosting the default
// session) and NewSession; default 0.
func Tenant(class int) Option { return func(c *config) { c.tenant = class } }

// MaxInFlight bounds submitted-but-unfinished tasks. At New it is the
// runtime's global limiter, metering every session's submissions together;
// at NewSession it is that session's private budget (both may be active —
// a spawn needs headroom in both). Zero (the default) means unlimited.
// Per-session budgets are exact; under concurrent sessions the global
// check is approximate (overshoot bounded by the number of concurrently
// admitting sessions), and a Batch is admitted whole once there is any
// headroom, so budgets are soft by up to len(batch)−1.
func MaxInFlight(n int) Option { return func(c *config) { c.maxInFlight = n } }

// Admission selects the full-budget behavior (default BlockOnFull).
func Admission(m AdmissionMode) Option { return func(c *config) { c.admission = m } }

// API is the task-spawning surface shared by *Runtime and *Session:
// programs written against it run unchanged on the runtime's default
// session or on a request-scoped session (the suite's kernels take an API,
// which is how one benchmark body serves both the batch harness and the
// per-request server).
type API interface {
	Register(key any) *Datum
	RegisterRegion(base any, lo, hi int64) *Datum
	Task(body func(*TC), clauses ...Clause) *Handle
	Go(body func(*TC) error, clauses ...Clause) *Handle
	TaskLoop(n, chunk int, body func(tc *TC, lo, hi int), clauses ...Clause) []*Handle
	Batch() *Batch
	SubmitBatch(fill func(b *Batch)) []*Handle
	Taskwait()
	TaskwaitCtx(ctx context.Context) error
	TaskwaitOn(keys ...any)
	Critical(name string, f func())
}

var (
	_ API = (*Runtime)(nil)
	_ API = (*Session)(nil)
)

// Session is a request-scoped task graph on a shared runtime: it owns its
// own spawning surface (Register/Task/Go/Batch/Taskwait...), its own
// error and cancellation domain, its own admission budget and tenant
// class, and a request-scoped arena — Close recycles the session's task
// records, dependence-shard entries, and version chains wholesale.
//
// Obtain one with Runtime.NewSession per request; the runtime hosts any
// number of concurrent sessions. Failure isolation is structural: a
// session's SkipDependents cascade, TaskwaitCtx cancellation, or Cancel
// never skips another session's tasks, even across shared-data dependence
// edges (cross-session edges order execution but never carry errors).
//
// A session is safe for concurrent use by multiple spawning goroutines.
// Close must not race in-flight spawns of the same session gratuitously —
// it waits for them, cancels what has not started, drains, then seals
// every Handle (Err becomes a stable ErrSessionClosed-wrapped outcome for
// skipped tasks). Data registered or touched through a session is treated
// as request-private: Close drops its dependence records, so sharing keys
// across sessions forfeits ordering history at each Close.
type Session struct {
	rt  *Runtime
	cfg config
	dom *core.Domain
	tc  *TC
	// ephemeral marks NewSession sessions: their tasks come from a pool and
	// are recycled at Close, and their handles/keys are tracked for sealing.
	// The runtime's default session is not ephemeral — it never closes and
	// pays none of the tracking.
	ephemeral bool

	closedFlag atomic.Bool
	// gate brackets spawn sections (closed-check .. submit) against Close:
	// Close sets closedFlag, then takes the write lock once as a barrier so
	// every in-flight spawn has either submitted (and is tracked) or will
	// observe the flag.
	gate sync.RWMutex
	// admu serializes the session's budget check-then-charge, making the
	// per-session budget exact under concurrent spawners.
	admu sync.Mutex

	// trmu guards the arena tracking below (appended by spawners, consumed
	// by Close).
	trmu    sync.Mutex
	handles []*Handle
	tasks   []*core.Task
	keys    map[any]struct{}
	regs    []*core.Datum
}

// taskPool recycles core.Task records across ephemeral sessions — the
// request-scoped arena that takes task allocation off the steady-state
// serving path.
var taskPool = sync.Pool{New: func() any { return new(core.Task) }}

// NewSession opens a request-scoped session. Session-relevant options —
// OnError, WithTuning (and its single-knob wrappers WithRenaming and
// RenameCap), Observe, Tenant, MaxInFlight, Admission — are accepted here
// with the same constructors New takes; a session value overrides the
// runtime default, anything not set is inherited (see DESIGN.md for the
// precedence table). A session Tuning profile can pin values (e.g.
// RenameCap: Fixed(8)) but cannot arm feedback loops — the controller is
// per-runtime, so Auto fields are meaningful only at New. Observe(nil) mutes
// the session's per-task events in the runtime's recorder; attaching a
// different recorder than the runtime's panics (per-session traces are
// carved out of the runtime's stream by session ID instead — see
// obs.Trace.FilterSession). Structural options (Workers, Wait, Locality,
// AffinitySched, Domains, Seed) are ignored: the backend is already built.
func (rt *Runtime) NewSession(opts ...Option) *Session {
	cfg := rt.cfg
	// The runtime's MaxInFlight is the global limiter and its tenant boost
	// belongs to the default session; a session starts neutral and opts in.
	cfg.maxInFlight = 0
	cfg.tenant = 0
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.rec != nil && cfg.rec != rt.cfg.rec {
		panic("ompss: NewSession: sessions cannot attach their own recorder; use the runtime's recorder (traces are per-session filterable) or Observe(nil) to mute")
	}
	s := &Session{rt: rt, cfg: cfg, ephemeral: true, keys: make(map[any]struct{})}
	dom := &core.Domain{
		ID:     rt.sessID.Add(1),
		Parent: rt.root,
		Owner:  s,
		Quiet:  rt.cfg.rec != nil && cfg.rec == nil,
	}
	if cfg.renamingOn() != rt.cfg.renamingOn() {
		if cfg.renamingOn() {
			dom.Rename = core.RenameForceOn
		} else {
			dom.Rename = core.RenameForceOff
		}
	}
	if capN := cfg.renameCapN(); capN > 0 && capN != rt.cfg.renameCapN() {
		dom.RenameCap = capN
	}
	s.dom = dom
	s.tc = &TC{rt: rt, ctx: &core.Context{}, worker: rt.main.worker, sess: s}
	return s
}

// DefaultSession returns the runtime's implicit session — the one every
// Runtime-level call acts on (rt.Task ≡ rt.DefaultSession().Task). It is
// never ephemeral: Close on it is a no-op, and its tasks are not pooled.
func (rt *Runtime) DefaultSession() *Session { return rt.def }

// ID returns the session's trace identity (the `sid` field of its submit
// events; the default session is 1).
func (s *Session) ID() uint64 { return s.dom.ID }

// SessionStats is a snapshot of one session's task accounting.
type SessionStats struct {
	Submitted uint64
	Finished  uint64
	Failed    uint64 // finished with a non-nil outcome (includes skipped)
	Skipped   uint64 // released without running
	InFlight  int64  // submitted but not yet finished

	// Labels holds the runtime's per-label execution aggregates (present
	// only when the hosting runtime's Tuning profile armed a feedback loop).
	// The aggregates are runtime-wide — labels are not session-scoped, so a
	// label shared across sessions reports their combined stream.
	Labels []LabelStats
}

// Stats returns the session's task accounting counters.
func (s *Session) Stats() SessionStats {
	ds := s.dom.Stats()
	return SessionStats{
		Submitted: ds.Submitted,
		Finished:  ds.Finished,
		Failed:    ds.Failed,
		Skipped:   ds.Skipped,
		InFlight:  ds.InFlight,
		Labels:    labelStatsOf(s.rt.be.tuner()),
	}
}

// Register interns key's dependence record on the shared runtime and — for
// request sessions — tracks the handle so Close recycles its records. See
// Runtime.Register for handle semantics.
func (s *Session) Register(key any) *Datum {
	d := s.rt.Register(key)
	if s.ephemeral {
		if pre, ok := key.(*Datum); !ok || pre != d {
			s.trmu.Lock()
			s.regs = append(s.regs, d.c)
			s.trmu.Unlock()
		}
	}
	return d
}

// RegisterRegion interns an array-section handle (see
// Runtime.RegisterRegion), tracked for recycling at Close.
func (s *Session) RegisterRegion(base any, lo, hi int64) *Datum {
	d := s.rt.RegisterRegion(base, lo, hi)
	if s.ephemeral {
		s.trmu.Lock()
		s.regs = append(s.regs, d.c)
		s.trmu.Unlock()
	}
	return d
}

// Task spawns a task in this session's scope (see TC.Task).
func (s *Session) Task(body func(*TC), clauses ...Clause) *Handle {
	return s.tc.Task(body, clauses...)
}

// Go spawns an error-returning task in this session's scope (see TC.Go).
func (s *Session) Go(body func(*TC) error, clauses ...Clause) *Handle {
	return s.tc.Go(body, clauses...)
}

// TaskLoop spawns chunked loop tasks in this session's scope (see
// TC.TaskLoop).
func (s *Session) TaskLoop(n, chunk int, body func(tc *TC, lo, hi int), clauses ...Clause) []*Handle {
	return s.tc.TaskLoop(n, chunk, body, clauses...)
}

// Batch starts an empty submission batch owned by this session; admission
// is charged when Submit flushes it.
func (s *Session) Batch() *Batch { return s.tc.Batch() }

// SubmitBatch opens a batch, lets fill populate it, and flushes (see
// Runtime.SubmitBatch).
func (s *Session) SubmitBatch(fill func(b *Batch)) []*Handle {
	b := s.Batch()
	fill(b)
	return b.Submit()
}

// Taskwait blocks until the session's direct children have finished,
// helping to execute ready tasks meanwhile (see TC.Taskwait).
func (s *Session) Taskwait() { s.tc.Taskwait() }

// TaskwaitCtx is Taskwait bounded by a context. Unlike the runtime-level
// TaskwaitCtx, cancellation is session-scoped: it cancels this session
// only (every not-yet-started task of the session is skipped; other
// sessions are untouched). See TC.TaskwaitCtx for the returned error.
func (s *Session) TaskwaitCtx(ctx context.Context) error { return s.tc.TaskwaitCtx(ctx) }

// TaskwaitOn blocks until the current last writer of each key has
// finished (see TC.TaskwaitOn).
func (s *Session) TaskwaitOn(keys ...any) { s.tc.TaskwaitOn(keys...) }

// Critical runs f under the named runtime-global lock (see TC.Critical).
func (s *Session) Critical(name string, f func()) { s.tc.Critical(name, f) }

// Err returns the first failure among the session's direct children so far
// (nil when none failed). It does not clear the record; TaskwaitCtx and
// Close consume it per round.
func (s *Session) Err() error {
	s.rt.observed.Store(true)
	return s.tc.ctx.Err()
}

// Cancel puts the session into cancellation drain: every task of this
// session that has not started yet — including later submissions — is
// released without running, finishing with a *SkipError wrapping cause
// (context.Canceled when nil). Other sessions are unaffected. Idempotent.
func (s *Session) Cancel(cause error) { s.cancelWith(cause) }

func (s *Session) cancelWith(cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	if s.dom.Cancel(cause) {
		s.rt.be.cancelWake()
	}
}

// Close ends the session: new spawns are refused (pre-failed handles
// wrapping ErrSessionClosed), every task that has not started is cancelled
// with ErrSessionClosed, the session drains (the closing thread helps
// execute), every Handle is sealed so Err returns a stable outcome
// forever, and the session's arena — task records, dependence-shard
// entries, version chains — recycles wholesale. Returns the first failure
// among the session's children (cancellation skips included), nil when
// everything succeeded. Idempotent; call Taskwait first if remaining work
// should complete rather than be cancelled. On the default session Close
// is a no-op returning nil.
func (s *Session) Close() error {
	if !s.ephemeral {
		return nil
	}
	if s.closedFlag.Swap(true) {
		return nil
	}
	// Barrier: wait out every spawn section that passed the closed check,
	// so the tracking below is complete.
	s.gate.Lock()
	s.gate.Unlock() //nolint:staticcheck // empty critical section is the barrier
	// Fast drain: skip everything that has not started.
	s.dom.Cancel(ErrSessionClosed)
	s.rt.be.cancelWake()
	s.rt.be.waitFor(s.tc, func() bool { return s.dom.InFlight() == 0 })
	// Outcomes are consumed here (sealed handles, returned error): that
	// counts as observing failures, like TaskwaitCtx.
	s.rt.observed.Store(true)
	s.trmu.Lock()
	for _, h := range s.handles {
		h.seal()
	}
	// Recycle the arena. Records first (they hold task pointers), then the
	// task objects back to the pool.
	g := s.rt.be.deps()
	for k := range s.keys {
		g.Forget(k)
	}
	for _, d := range s.regs {
		g.Release(d)
	}
	for _, t := range s.tasks {
		t.Reset()
		taskPool.Put(t)
	}
	s.handles, s.tasks, s.regs, s.keys = nil, nil, nil, nil
	s.trmu.Unlock()
	return s.tc.ctx.TakeErr()
}

// Closed reports whether Close has begun.
func (s *Session) Closed() bool { return s.closedFlag.Load() }

// managed reports whether spawns must go through the admission/tracking
// path: every request session, and the default session when a global
// limiter is configured.
func (s *Session) managed() bool {
	return s.ephemeral || s.rt.cfg.maxInFlight > 0
}

// limit returns the session-private in-flight budget (0 = unlimited). The
// default session has none — the runtime's MaxInFlight acts globally via
// the root domain.
func (s *Session) limit() int {
	if s.ephemeral {
		return s.cfg.maxInFlight
	}
	return 0
}

// headroom reports whether both budgets currently admit n more tasks
// (headroom rule: a multi-task admission needs any headroom, so batch
// budgets are soft by up to n−1).
func (s *Session) headroom() bool {
	if lim := s.limit(); lim > 0 && s.dom.InFlight() >= int64(lim) {
		return false
	}
	if glim := s.rt.cfg.maxInFlight; glim > 0 && s.rt.root.InFlight() >= int64(glim) {
		return false
	}
	return true
}

// admitN waits for (BlockOnFull) or probes (RejectOnFull) budget headroom
// and charges the session for n tasks. ok=false reports the refusal cause
// (ErrAdmission, ErrSessionClosed, or the session's cancellation cause);
// nothing is charged then.
func (s *Session) admitN(tc *TC, n int64) (ok bool, cause error) {
	for {
		if s.closedFlag.Load() {
			return false, ErrSessionClosed
		}
		if ce := s.dom.CancelCause(); ce != nil {
			return false, ce
		}
		s.admu.Lock()
		if s.headroom() {
			s.dom.ChargeN(n)
			s.admu.Unlock()
			return true, nil
		}
		s.admu.Unlock()
		if s.cfg.admission == RejectOnFull {
			return false, ErrAdmission
		}
		// Backpressure: help execute until a finish frees budget, the
		// session is cancelled, or it closes.
		s.rt.be.waitFor(tc, func() bool {
			return s.closedFlag.Load() || s.dom.CancelCause() != nil || s.headroom()
		})
	}
}

// deadHandle returns the pre-failed handle of a refused spawn.
func (s *Session) deadHandle(label string, cause error) *Handle {
	return &Handle{rt: s.rt, inlineErr: &SkipError{Label: label, Cause: cause}}
}

// spawnManaged is the admission-controlled, arena-tracked spawn path of
// managed sessions (TC.spawn routes here).
func (s *Session) spawnManaged(tc *TC, spec *taskSpec, body func(*TC) error) *Handle {
	if ok, cause := s.admitN(tc, 1); !ok {
		return s.deadHandle(spec.label, cause)
	}
	s.gate.RLock()
	if s.closedFlag.Load() {
		s.gate.RUnlock()
		s.dom.Uncharge(1)
		return s.deadHandle(spec.label, ErrSessionClosed)
	}
	ct := tc.buildDeferred(spec, body)
	h := &Handle{rt: s.rt, t: ct}
	if s.ephemeral {
		s.trmu.Lock()
		s.handles = append(s.handles, h)
		s.tasks = append(s.tasks, ct)
		s.noteAccessKeys(ct.Accesses)
		s.trmu.Unlock()
	}
	s.rt.be.submit(tc, ct)
	s.gate.RUnlock()
	return h
}

// submitBatchManaged flushes a batch through admission and arena tracking
// (Batch.Submit routes here for managed sessions).
func (s *Session) submitBatchManaged(tc *TC, ts []*core.Task, hs []*Handle) []*Handle {
	n := int64(len(ts))
	refuse := func(cause error) []*Handle {
		for i, h := range hs {
			h.fail(&SkipError{Label: ts[i].Label, Cause: cause})
		}
		s.recycle(ts)
		return hs
	}
	if ok, cause := s.admitN(tc, n); !ok {
		return refuse(cause)
	}
	s.gate.RLock()
	if s.closedFlag.Load() {
		s.gate.RUnlock()
		s.dom.Uncharge(n)
		return refuse(ErrSessionClosed)
	}
	if s.ephemeral {
		s.trmu.Lock()
		s.handles = append(s.handles, hs...)
		s.tasks = append(s.tasks, ts...)
		for _, t := range ts {
			s.noteAccessKeys(t.Accesses)
		}
		s.trmu.Unlock()
	}
	s.rt.be.submitBatch(tc, ts)
	s.gate.RUnlock()
	return hs
}

// noteAccessKeys records every dependence key the session touched, so
// Close can drop the shard records (which hold task pointers) before the
// tasks recycle. Called with trmu held. Region accesses record their base
// (Forget drops section records by base).
func (s *Session) noteAccessKeys(accesses []core.Access) {
	for i := range accesses {
		k := accesses[i].Key
		if r, ok := k.(core.Region); ok {
			k = r.Base
		}
		s.keys[k] = struct{}{}
	}
}

// recycle returns never-submitted tasks of a refused batch to the pool.
func (s *Session) recycle(ts []*core.Task) {
	if !s.ephemeral {
		return
	}
	for _, t := range ts {
		t.Reset()
		taskPool.Put(t)
	}
}
