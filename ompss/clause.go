package ompss

import (
	"time"

	"ompssgo/internal/core"
)

// Clause annotates a task at spawn time, mirroring the OmpSs pragma clause
// vocabulary (input/output/inout plus cost, priority, label, if).
type Clause func(*taskSpec)

type taskSpec struct {
	accesses    []core.Access
	cost        time.Duration
	priority    int
	label       string
	enabled     bool
	final       bool
	affinity    uint32 // home shard of the Affinity hint
	hasAffinity bool
	iters       int // TaskLoop chunk's iteration count (0 for ordinary tasks)
}

func buildSpec(clauses []Clause) taskSpec {
	s := taskSpec{enabled: true}
	for _, c := range clauses {
		c(&s)
	}
	return s
}

// access builds one core.Access from a dependence key, recognizing
// registered *Datum handles: a handle contributes its pre-resolved shard
// and record (the fast submit path); any other key is used verbatim (the
// compatibility path — the runtime lazily interns its record at submit).
func access(k any, m core.Mode, bytes int64) core.Access {
	if d, ok := k.(*Datum); ok {
		if bytes == 0 && d.c.IsRegion() {
			bytes = d.c.Region().Len()
		}
		return core.Access{Key: d.c.Key, Mode: m, Bytes: bytes, Datum: d.c}
	}
	return core.Access{Key: k, Mode: m, Bytes: bytes}
}

// In declares read (input) dependences on the given keys. A key identifies
// a datum by exact match — pass the same pointer the producing task
// declared, or a registered *Datum handle for the allocation-free fast
// path.
func In(keys ...any) Clause {
	return func(s *taskSpec) {
		for _, k := range keys {
			s.accesses = append(s.accesses, access(k, core.In, 0))
		}
	}
}

// Out declares write (output) dependences on the given keys (raw keys or
// *Datum handles).
func Out(keys ...any) Clause {
	return func(s *taskSpec) {
		for _, k := range keys {
			s.accesses = append(s.accesses, access(k, core.Out, 0))
		}
	}
}

// InOut declares read-write (inout) dependences on the given keys (raw keys
// or *Datum handles).
func InOut(keys ...any) Clause {
	return func(s *taskSpec) {
		for _, k := range keys {
			s.accesses = append(s.accesses, access(k, core.InOut, 0))
		}
	}
}

// Concurrent declares dependences that may overlap with each other but are
// ordered against ordinary readers and writers (the OmpSs concurrent
// extension, for reductions guarded by their own synchronization). Keys may
// be raw keys or *Datum handles.
func Concurrent(keys ...any) Clause {
	return func(s *taskSpec) {
		for _, k := range keys {
			s.accesses = append(s.accesses, access(k, core.Concurrent, 0))
		}
	}
}

// Commutative declares order-free but mutually exclusive updates (the OmpSs
// commutative extension): commutative tasks on the same key may execute in
// any order but never simultaneously — the runtime serializes their bodies
// with a per-key lock — while ordinary readers and writers are ordered
// against all of them. Keys may be raw keys or *Datum handles. Declaration
// order does not matter: the runtime acquires multi-key lock sets in a
// globally consistent order, so tasks listing the same keys in different
// orders cannot deadlock.
func Commutative(keys ...any) Clause {
	return func(s *taskSpec) {
		for _, k := range keys {
			s.accesses = append(s.accesses, access(k, core.Commutative, 0))
		}
	}
}

// InSized is In with a byte footprint for the simulated memory model.
func InSized(key any, bytes int64) Clause {
	return func(s *taskSpec) {
		s.accesses = append(s.accesses, access(key, core.In, bytes))
	}
}

// OutSized is Out with a byte footprint for the simulated memory model.
func OutSized(key any, bytes int64) Clause {
	return func(s *taskSpec) {
		s.accesses = append(s.accesses, access(key, core.Out, bytes))
	}
}

// InOutSized is InOut with a byte footprint for the simulated memory model.
func InOutSized(key any, bytes int64) Clause {
	return func(s *taskSpec) {
		s.accesses = append(s.accesses, access(key, core.InOut, bytes))
	}
}

// InRegion declares a read dependence on the array section [lo, hi) of the
// array identified by base — the OmpSs array-section clause
// `input(a[lo;hi-lo])`. Sections of the same base conflict only where they
// overlap, so tasks over disjoint blocks run in parallel without manual
// per-block keys.
func InRegion(base any, lo, hi int64) Clause {
	return func(s *taskSpec) {
		s.accesses = append(s.accesses, core.Access{
			Key: core.Region{Base: base, Lo: lo, Hi: hi}, Mode: core.In, Bytes: hi - lo,
		})
	}
}

// OutRegion declares a write dependence on an array section.
func OutRegion(base any, lo, hi int64) Clause {
	return func(s *taskSpec) {
		s.accesses = append(s.accesses, core.Access{
			Key: core.Region{Base: base, Lo: lo, Hi: hi}, Mode: core.Out, Bytes: hi - lo,
		})
	}
}

// InOutRegion declares a read-write dependence on an array section.
func InOutRegion(base any, lo, hi int64) Clause {
	return func(s *taskSpec) {
		s.accesses = append(s.accesses, core.Access{
			Key: core.Region{Base: base, Lo: lo, Hi: hi}, Mode: core.InOut, Bytes: hi - lo,
		})
	}
}

// RegionKey builds the dependence key for an array section, for use with
// TaskwaitOn (e.g. rt.TaskwaitOn(ompss.RegionKey(&a[0], 0, 64))).
func RegionKey(base any, lo, hi int64) any {
	return core.Region{Base: base, Lo: lo, Hi: hi}
}

// Cost declares the task's computational cost for the simulated machine
// (native execution ignores it; the body's real work is the cost there).
func Cost(d time.Duration) Clause { return func(s *taskSpec) { s.cost = d } }

// Priority biases dispatch: ready tasks with higher priority are scheduled
// before FIFO-ordered peers. On the native runtime, priority tasks released
// by a finishing task land on that worker's high-priority LIFO lane and are
// popped before everything else on the lane; priority tasks that are ready
// at submission jump the global FIFO through a priority-ordered side queue.
func Priority(p int) Clause { return func(s *taskSpec) { s.priority = p } }

// Affinity hints that the task should execute near the home of the given
// datum: the task is submitted to the mailbox of the lane its dependence
// shard maps to (see the AffinitySched option), so work lands where its
// data lives and domain-ordered stealing drains it with near workers first.
// The key may be a registered *Datum handle (preferred — the home shard is
// already cached) or any raw dependence key. A later Affinity clause
// overrides an earlier one. The hint never affects correctness, only
// placement; it is ignored when AffinitySched(false) is set.
func Affinity(key any) Clause {
	return func(s *taskSpec) {
		if d, ok := key.(*Datum); ok {
			s.affinity = d.c.Shard()
		} else {
			s.affinity = core.ShardOf(key)
		}
		s.hasAffinity = true
	}
}

// Label names the task for traces and DOT exports.
func Label(l string) Clause { return func(s *taskSpec) { s.label = l } }

// If controls deferral: If(false) executes the task undeferred in the
// spawning thread (still honoring cost accounting), as in OmpSs. Use it to
// collapse task granularity dynamically.
func If(cond bool) Clause { return func(s *taskSpec) { s.enabled = s.enabled && cond } }

// Final marks the task final when cond holds (`final` clause): the task and
// every task spawned inside it (transitively) execute undeferred, cutting
// off nesting overhead below a depth or size threshold.
func Final(cond bool) Clause { return func(s *taskSpec) { s.final = s.final || cond } }
