// Command h264 drives the toy codec substrate: it synthesizes a video,
// encodes it, decodes it with a selectable decoder variant, and verifies
// the output against the sequential reference.
//
//	h264 -frames 32 -w 192 -h 128 -variant ompss -threads 8
//	h264 -variant pthreads -threads 4 -stats
//	h264 -encode out.tbc         write the bitstream to a file
//	h264 -decode out.tbc         decode a previously written bitstream
//
// Variants: seq (reference loop), pthreads (line decoding), ompss
// (Listing 1 task pipeline). pthreads/ompss run natively on goroutines.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ompssgo/internal/h264"
	"ompssgo/internal/media"
	sh264dec "ompssgo/internal/suite/h264dec"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

func main() {
	var (
		frames  = flag.Int("frames", 32, "frames to synthesize")
		width   = flag.Int("w", 192, "frame width (multiple of 16)")
		height  = flag.Int("h", 128, "frame height (multiple of 16)")
		qp      = flag.Int("qp", 26, "quantization parameter (0-51)")
		gop     = flag.Int("gop", 8, "I-frame interval")
		deblock = flag.Bool("deblock", false, "enable the in-loop deblocking filter")
		variant = flag.String("variant", "seq", "decoder variant: seq|pthreads|ompss")
		threads = flag.Int("threads", 4, "threads/workers for parallel variants")
		encode  = flag.String("encode", "", "write the encoded bitstream to this file and exit")
		decode  = flag.String("decode", "", "decode this bitstream file instead of synthesizing")
		stats   = flag.Bool("stats", false, "print codec statistics")
	)
	flag.Parse()

	var bs []byte
	if *decode != "" {
		var err error
		bs, err = os.ReadFile(*decode)
		if err != nil {
			fatalf("read: %v", err)
		}
	} else {
		p := h264.Params{W: *width, H: *height, QP: *qp, GOP: *gop, SearchRange: 4, Deblock: *deblock}
		if err := p.Validate(); err != nil {
			fatalf("%v", err)
		}
		video := media.Video(*frames, *width, *height, 12)
		var err error
		start := time.Now()
		bs, err = h264.EncodeSequence(p, video)
		if err != nil {
			fatalf("encode: %v", err)
		}
		if *stats {
			raw := *frames * *width * *height
			fmt.Printf("encoded %d frames: %d bytes (%.1f%% of raw), %v\n",
				*frames, len(bs), 100*float64(len(bs))/float64(raw), time.Since(start))
		}
		if *encode != "" {
			if err := os.WriteFile(*encode, bs, 0o644); err != nil {
				fatalf("write: %v", err)
			}
			fmt.Printf("wrote %s (%d bytes)\n", *encode, len(bs))
			return
		}
	}

	p, nframes, _, err := h264.ParseStreamHeader(bs)
	if err != nil {
		fatalf("parse: %v", err)
	}
	wl := sh264dec.Small()
	wl.W, wl.H, wl.Frames, wl.QP, wl.GOP, wl.SearchRange = p.W, p.H, nframes, p.QP, p.GOP, p.SearchRange
	in := sh264dec.NewFromStream(wl, bs)

	want := in.RunSeq()
	start := time.Now()
	var got uint64
	switch *variant {
	case "seq":
		got = in.RunSeq()
	case "pthreads":
		got = in.RunPthreads(pthread.Native(*threads).Main())
	case "ompss":
		rt := ompss.New(ompss.Workers(*threads))
		got = in.RunOmpSs(rt)
		rt.Shutdown()
	default:
		fatalf("unknown variant %q", *variant)
	}
	elapsed := time.Since(start)
	status := "OK"
	if got != want {
		status = "MISMATCH"
	}
	fmt.Printf("decoded %d frames (%dx%d) with %s in %v — checksum %#x [%s]\n",
		nframes, p.W, p.H, *variant, elapsed, got, status)
	if got != want {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "h264: "+format+"\n", args...)
	os.Exit(1)
}
