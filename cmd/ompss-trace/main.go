// Command ompss-trace records, analyzes, and exports observability traces
// of the runtime (internal/obs) — the repo's answer to the Extrae/Paraver
// tooling the OmpSs ecosystem ships, and the instrument behind the paper's
// "where did the time go" analyses.
//
//	ompss-trace record -bench h264dec -workers 4 -o h264.trace.json
//	    run a suite app natively with a recorder attached, save the raw trace
//	ompss-trace record -bench c-ray -sim -cores 16 -o cray.trace.json
//	    ... on the simulated machine (deterministic virtual-time trace)
//	ompss-trace analyze h264.trace.json
//	    parallelism profile, critical path + slack, per-worker utilization,
//	    steal matrix, top tasks by exclusive time
//	ompss-trace export -format chrome -o h264.chrome.json h264.trace.json
//	    Chrome trace-event JSON: load in chrome://tracing or ui.perfetto.dev
//	ompss-trace export -format paraver -o h264.csv h264.trace.json
//	    Paraver-flavored CSV timeline
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ompssgo/internal/obs"
	"ompssgo/internal/suite"
	"ompssgo/internal/suite/distkern"
	"ompssgo/machine"
	"ompssgo/ompss"
)

func main() {
	// Distributed recording re-execs this binary as worker processes; a
	// spawned child diverts into its serve loop here and never returns.
	ompss.MaybeWorker()
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "analyze":
		err = analyze(os.Args[2:])
	case "export":
		err = export(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ompss-trace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ompss-trace record  -bench <name> [-workers N] [-small] [-sim] [-cores N] [-cap N] [-o FILE]
  ompss-trace record  -bench <name> -dist [-dist-workers N] [-small] [-cap N] [-o FILE]
  ompss-trace analyze [-top N] FILE
  ompss-trace export  -format chrome|paraver [-o FILE] FILE`)
}

// record runs one suite benchmark with a recorder attached and saves the
// raw trace.
func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		benchName = fs.String("bench", "", "suite benchmark to record (required)")
		workers   = fs.Int("workers", 2, "native worker count (OMP_NUM_THREADS equivalent)")
		small     = fs.Bool("small", false, "use the reduced test workload")
		sim       = fs.Bool("sim", false, "record on the simulated machine (virtual-time trace)")
		cores     = fs.Int("cores", 8, "simulated core count (with -sim)")
		distRun   = fs.Bool("dist", false, "record on the distributed (multi-process) backend: one merged coordinator+worker trace")
		distW     = fs.Int("dist-workers", 2, "worker processes (with -dist)")
		capacity  = fs.Int("cap", obs.DefaultCapacity, "per-worker ring capacity in events")
		out       = fs.String("o", "trace.json", "output file for the raw trace")
	)
	fs.Parse(args)
	if *distRun {
		return recordDist(*benchName, *distW, *small, *capacity, *out)
	}
	if *benchName == "" {
		return fmt.Errorf("record needs -bench\nvalid benchmarks: %s", strings.Join(suite.Names(), ", "))
	}
	scale := suite.Default
	if *small {
		scale = suite.Small
	}
	in, err := suite.New(*benchName, scale)
	if err != nil {
		return fmt.Errorf("%v\nvalid benchmarks: %s", err, strings.Join(suite.Names(), ", "))
	}
	want := in.RunSeq()
	rec := obs.NewRecorder(obs.Capacity(*capacity))
	var got uint64
	if *sim {
		// A fresh instance: RunSeq warmed caches and, more importantly,
		// some suite apps reuse buffers between runs.
		in, _ = suite.New(*benchName, scale)
		if _, err := ompss.RunSim(machine.Paper(*cores), func(rt *ompss.Runtime) {
			got = in.RunOmpSs(rt)
		}, ompss.Observe(rec)); err != nil {
			return fmt.Errorf("sim run: %v", err)
		}
	} else {
		in, _ = suite.New(*benchName, scale)
		rt := ompss.New(ompss.Workers(*workers), ompss.Observe(rec))
		got = in.RunOmpSs(rt)
		rt.Shutdown()
	}
	if got != want {
		return fmt.Errorf("%s: checksum %#x, sequential reference %#x", *benchName, got, want)
	}
	tr := rec.Snapshot()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %v", *out, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %s (%s): %d events, %d dropped -> %s\n",
		*benchName, tr.Backend, len(tr.Events), tr.TotalDropped(), *out)
	return nil
}

// recordDist runs one dist-adapted workload across worker processes and
// saves the merged cross-process trace: coordinator dispatch lanes plus one
// clock-aligned track per worker incarnation. The merged stream is
// reconciled against the coordinator's transfer accounting before it is
// written — a trace that disagrees with the stats is an error, not an
// artifact.
func recordDist(benchName string, workers int, small bool, capacity int, out string) error {
	set := distkern.Default()
	if small {
		set = distkern.Small()
	}
	var names []string
	var wl *distkern.Workload
	for i := range set {
		names = append(names, set[i].Name)
		if set[i].Name == benchName {
			wl = &set[i]
		}
	}
	if wl == nil {
		return fmt.Errorf("record -dist needs -bench\nvalid distributed benchmarks: %s", strings.Join(names, ", "))
	}
	want := wl.Seq()
	var got uint64
	var merged *obs.Trace
	stats, err := ompss.RunDist(workers, func(rt *ompss.DistRT) error {
		var rerr error
		got, rerr = wl.Run(rt)
		return rerr
	},
		ompss.DistTraceWorkers(capacity),
		ompss.DistTraceSink(func(m *obs.Trace) { merged = m }))
	if err != nil {
		return fmt.Errorf("dist run: %v", err)
	}
	if got != want {
		return fmt.Errorf("%s: checksum %#x, sequential reference %#x", benchName, got, want)
	}
	if merged == nil {
		return fmt.Errorf("dist run produced no merged trace")
	}
	if err := ompss.DistReconcileTrace(merged, stats); err != nil {
		return fmt.Errorf("merged trace disagrees with run stats: %v", err)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := merged.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %v", out, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %s (dist, %d workers): %d events on %d tracks, %d dropped -> %s\n",
		benchName, workers, len(merged.Events), len(merged.Tracks), merged.TotalDropped(), out)
	return nil
}

func loadTrace(fs *flag.FlagSet) (*obs.Trace, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("want exactly one trace file argument")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadTrace(f)
}

// analyze prints the paper-style reports for a saved trace, optionally
// narrowed to one session's task graph (server traces interleave many).
func analyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	top := fs.Int("top", 10, "entries to show in the critical-path and top-task lists")
	session := fs.Uint64("session", 0, "analyze only this session's tasks (see -sessions)")
	list := fs.Bool("sessions", false, "list the trace's session IDs and task counts, then exit")
	fs.Parse(args)
	tr, err := loadTrace(fs)
	if err != nil {
		return err
	}
	if *list {
		ids, counts := tr.Sessions()
		if len(ids) == 0 {
			fmt.Println("no session-tagged submissions in this trace")
			return nil
		}
		for _, id := range ids {
			fmt.Printf("session %-6d %d tasks\n", id, counts[id])
		}
		return nil
	}
	if *session != 0 {
		tr = tr.FilterSession(*session)
	}
	return obs.Analyze(tr).WriteReport(os.Stdout, *top)
}

// export converts a saved trace to a viewer format.
func export(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	var (
		format = fs.String("format", "chrome", "output format: chrome|paraver")
		out    = fs.String("o", "", "output file (default: stdout)")
	)
	fs.Parse(args)
	tr, err := loadTrace(fs)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "" {
		if f, err = os.Create(*out); err != nil {
			return err
		}
		w = f
	}
	switch *format {
	case "chrome":
		err = obs.WriteChromeTrace(w, tr)
	case "paraver":
		err = obs.WriteParaverCSV(w, tr)
	default:
		err = fmt.Errorf("unknown format %q (want chrome or paraver)", *format)
	}
	if f != nil {
		// Close errors matter: they are where a full filesystem surfaces.
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
