// Command ompss-bench regenerates the paper's evaluation artifacts on the
// simulated 4-socket cc-NUMA machine:
//
//	ompss-bench -table1              reproduce Table 1 (speedup factors)
//	ompss-bench -table1 -paper       ... with the published numbers interleaved
//	ompss-bench -ablation barrier    §4 rgbcmy polling-vs-blocking mechanism
//	ompss-bench -ablation locality   §4 ray-rot locality-scheduling mechanism
//	ompss-bench -ablation granularity §4 h264dec task-granularity dilemma
//	ompss-bench -ablation occupancy  §5 polling-runtime core occupancy
//	ompss-bench -bench c-ray -cores 16   one cell, verbose
//	ompss-bench -native -o BENCH_native.json   wall-clock native runs
//	ompss-bench -native -tune        ... plus the grain ablation: TaskLoop
//	    auto-chunking (WithTuning Grain: Auto) vs a swept static-chunk ladder
//	ompss-bench -trend -candidate fresh.json   perf-trajectory gate: compare
//	    a fresh -native report's policy and rename factors against the
//	    committed baseline (±tol, regressions only; CI's bench-trend step)
//	ompss-bench -dist -o BENCH_dist.json       two-process proof: run the
//	    adapted suite workloads on the distributed backend at 1 and 2 worker
//	    processes over each rendezvous transport (-dist-transport, default
//	    unix,tcp), verify checksums against the sequential reference, and
//	    record transfer/cache/chain/forwarding accounting plus the
//	    2-over-1 speedup
//	ompss-bench -serve-trend -serve-candidate fresh.json   service-runtime
//	    trajectory gate: compare a fresh ompss-serve -load report against
//	    the committed BENCH_serve.json (violations and errors always fail;
//	    latency/throughput gate hard only on a comparable host)
//
// -small switches to the reduced test workloads; -cores overrides the core
// list (comma-separated).
//
// -native leaves the simulator entirely: it runs the suite's small
// instances on real goroutine workers (wall-clock timing, results verified
// against the sequential reference) under the scheduling policy switched on
// and off, plus the contended-throughput affinity ablation, and writes the
// measurements to the JSON file named by -o. -cores then selects the native
// worker counts, -iters the repetitions per cell, and -small the reduced
// workloads (smoke scale: policy effects need the default workloads to rise
// above host noise); -bench restricts the run to one benchmark. -trace FILE
// additionally runs one instrumented repetition (recorder attached, outside
// the measured cells) and exports it as Chrome trace-event JSON — see
// cmd/ompss-trace for the full record/analyze/export pipeline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ompssgo/internal/bench"
	"ompssgo/internal/dist"
	"ompssgo/internal/obs"
	"ompssgo/internal/suite"
	_ "ompssgo/internal/suite/distkern" // registers the distributed suite kernels
)

func main() {
	// A child process spawned by the distributed backend diverts into the
	// worker loop here and never reaches flag parsing.
	dist.MaybeWorker()
	var (
		table1    = flag.Bool("table1", false, "reproduce Table 1 across the full suite")
		withPaper = flag.Bool("paper", false, "interleave the paper's published numbers")
		ablation  = flag.String("ablation", "", "run a mechanism ablation: barrier|locality|granularity|occupancy")
		oneBench  = flag.String("bench", "", "measure a single benchmark")
		usability = flag.Bool("usability", false, "report per-variant implementation effort (§2 usability)")
		native    = flag.Bool("native", false, "measure wall-clock native execution and write BENCH_native.json")
		tune      = flag.Bool("tune", false, "with -native: add the grain-ablation section (auto chunking vs best static chunk)")
		trend     = flag.Bool("trend", false, "perf-trajectory gate: compare -candidate against -baseline")
		baseline  = flag.String("baseline", "BENCH_native.json", "baseline report for -trend")
		candidate = flag.String("candidate", "", "candidate report for -trend")
		tol       = flag.Float64("tol", 0.30, "relative factor tolerance for -trend (0.30 = candidate factors may fall 30% below baseline)")
		distRun   = flag.Bool("dist", false, "measure the distributed (multi-process) backend and write BENCH_dist.json")
		distW     = flag.String("dist-workers", "1,2", "comma-separated worker-process counts for -dist")
		distNet   = flag.String("dist-transport", "unix,tcp", "comma-separated rendezvous transports for -dist (unix, tcp)")
		serveTr   = flag.Bool("serve-trend", false, "service trajectory gate: compare -serve-candidate against -serve-baseline")
		serveBase = flag.String("serve-baseline", "BENCH_serve.json", "baseline serve report for -serve-trend")
		serveCand = flag.String("serve-candidate", "", "candidate serve report for -serve-trend")
		serveTol  = flag.Float64("serve-tol", 0.50, "relative tolerance for -serve-trend latency/throughput gates")
		out       = flag.String("o", "BENCH_native.json", "output file for -native and -dist measurements")
		traceOut  = flag.String("trace", "", "with -native: export a Chrome trace of one instrumented run to this file")
		iters     = flag.Int("iters", 3, "repetitions per -native cell")
		coresFlag = flag.String("cores", "", "comma-separated core counts (default 1,8,16,24,32; for -native: 1,2,NumCPU)")
		small     = flag.Bool("small", false, "use the reduced test workloads")
		quiet     = flag.Bool("q", false, "suppress per-cell progress")
	)
	flag.Parse()

	scale := suite.Default
	if *small {
		scale = suite.Small
	}
	var cores []int
	if *coresFlag != "" {
		for _, tok := range strings.Split(*coresFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 1 {
				fatalf("bad -cores value %q: want a positive integer", tok)
			}
			cores = append(cores, n)
		}
	} else if !*native {
		cores = bench.PaperCores
	}
	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}

	switch {
	case *distRun:
		var dw []int
		for _, tok := range strings.Split(*distW, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 1 {
				fatalf("bad -dist-workers value %q: want a positive integer", tok)
			}
			dw = append(dw, n)
		}
		var dnet []string
		for _, tok := range strings.Split(*distNet, ",") {
			tr := strings.TrimSpace(tok)
			if tr != dist.TransportUnix && tr != dist.TransportTCP {
				fatalf("bad -dist-transport value %q: want %s or %s", tr, dist.TransportUnix, dist.TransportTCP)
			}
			dnet = append(dnet, tr)
		}
		outPath := *out
		if outPath == "BENCH_native.json" { // the -o default belongs to -native
			outPath = "BENCH_dist.json"
		}
		rep, err := bench.RunDist(dw, *iters, scale, dnet, progress)
		if err != nil {
			fatalf("dist: %v", err)
		}
		f, err := os.Create(outPath)
		if err != nil {
			fatalf("dist: %v", err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fatalf("dist: write %s: %v", outPath, err)
		}
		if err := f.Close(); err != nil {
			fatalf("dist: close %s: %v", outPath, err)
		}
		fmt.Printf("distributed two-process proof (%s, %d CPUs) -> %s\n",
			rep.GOARCH, rep.NumCPU, outPath)
		rep.WriteTable(os.Stdout)
	case *serveTr:
		if *serveCand == "" {
			fatalf("-serve-trend needs -serve-candidate (a fresh ompss-serve -load report)")
		}
		base, err := bench.LoadServeReport(*serveBase)
		if err != nil {
			fatalf("serve-trend: baseline: %v", err)
		}
		cand, err := bench.LoadServeReport(*serveCand)
		if err != nil {
			fatalf("serve-trend: candidate: %v", err)
		}
		res := bench.CompareServeTrend(base, cand, *serveTol)
		fmt.Printf("serve-trend: compared %d metrics (%s -> %s, tolerance %.0f%%)\n",
			res.Compared, *serveBase, *serveCand, *serveTol*100)
		for _, w := range res.Warnings {
			fmt.Printf("serve-trend warning: %s\n", w)
		}
		if !res.OK() {
			for _, r := range res.Regressions {
				fmt.Fprintf(os.Stderr, "serve-trend REGRESSION: %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Println("serve-trend: OK — service trajectory holds")
	case *trend:
		if *candidate == "" {
			fatalf("-trend needs -candidate (a freshly measured BENCH_native.json)")
		}
		base, err := bench.LoadNativeReport(*baseline)
		if err != nil {
			fatalf("trend: baseline: %v", err)
		}
		cand, err := bench.LoadNativeReport(*candidate)
		if err != nil {
			fatalf("trend: candidate: %v", err)
		}
		res := bench.CompareTrend(base, cand, *tol)
		fmt.Printf("trend: compared %d factor pairs (%s -> %s, tolerance %.0f%%)\n",
			res.Compared, *baseline, *candidate, *tol*100)
		for _, w := range res.Warnings {
			fmt.Printf("trend warning: %s\n", w)
		}
		if !res.OK() {
			for _, r := range res.Regressions {
				fmt.Fprintf(os.Stderr, "trend REGRESSION: %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Println("trend: OK — performance trajectory holds")
	case *native:
		var names []string
		if *oneBench != "" {
			if _, err := suite.New(*oneBench, suite.Small); err != nil {
				fatalf("%v\nvalid benchmarks: %s", err, strings.Join(suite.Names(), ", "))
			}
			names = []string{*oneBench}
		}
		rep, err := bench.RunNative(names, cores, *iters, scale, progress)
		if err != nil {
			fatalf("native: %v", err)
		}
		if *tune {
			if rep.Autotune, err = bench.RunAutotune(cores, *iters, scale, progress); err != nil {
				fatalf("native: autotune: %v", err)
			}
		}
		f, err := os.Create(*out)
		if err != nil {
			fatalf("native: %v", err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fatalf("native: write %s: %v", *out, err)
		}
		if err := f.Close(); err != nil {
			fatalf("native: close %s: %v", *out, err)
		}
		fmt.Printf("native wall-clock measurements (%s, %d CPUs) -> %s\n",
			rep.GOARCH, rep.NumCPU, *out)
		rep.WriteTable(os.Stdout)
		if *traceOut != "" {
			// One extra instrumented repetition (outside the measured
			// cells): the -bench selection if given, else the first suite
			// app, at the largest requested worker count (harness default
			// when -cores was not given).
			name := suite.Names()[0]
			if *oneBench != "" {
				name = *oneBench
			}
			w := 0
			for _, c := range cores {
				if c > w {
					w = c
				}
			}
			tr, err := bench.RecordNativeTrace(name, w, scale)
			if err != nil {
				fatalf("trace: %v", err)
			}
			f, err := os.Create(*traceOut)
			if err != nil {
				fatalf("trace: %v", err)
			}
			if err := obs.WriteChromeTrace(f, tr); err != nil {
				fatalf("trace: write %s: %v", *traceOut, err)
			}
			if err := f.Close(); err != nil {
				fatalf("trace: close %s: %v", *traceOut, err)
			}
			fmt.Printf("chrome trace of %s (w=%d, %d events, %d dropped) -> %s\n",
				name, tr.Workers, len(tr.Events), tr.TotalDropped(), *traceOut)
		}
	case *usability:
		rows, err := bench.MeasureUsability("internal/suite")
		if err != nil {
			fatalf("usability: %v (run from the repository root)", err)
		}
		bench.WriteUsability(rows, os.Stdout)
	case *table1:
		t, err := bench.RunTable1(scale, cores, progress)
		if err != nil {
			fatalf("table1: %v", err)
		}
		fmt.Println("Table 1: speedup factors of OmpSs over Pthreads (simulated 4-socket cc-NUMA)")
		t.Write(os.Stdout, *withPaper)
	case *ablation != "":
		var err error
		switch *ablation {
		case "barrier":
			err = bench.BarrierAblation(scale, cores, os.Stdout)
		case "locality":
			err = bench.LocalityAblation(scale, cores, os.Stdout)
		case "granularity":
			err = bench.GranularityAblation(scale, cores, os.Stdout)
		case "occupancy":
			err = bench.OccupancyAblation(scale, os.Stdout)
		default:
			fatalf("unknown ablation %q", *ablation)
		}
		if err != nil {
			fatalf("ablation %s: %v", *ablation, err)
		}
	case *oneBench != "":
		in, err := suite.New(*oneBench, scale)
		if err != nil {
			fatalf("%v\nvalid benchmarks: %s", err, strings.Join(suite.Names(), ", "))
		}
		fmt.Printf("%-13s %5s %14s %14s %8s\n", "benchmark", "cores", "pthreads", "ompss", "factor")
		for _, p := range cores {
			cell, err := bench.MeasureCell(in, p)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("%-13s %5d %14v %14v %8.2f\n",
				cell.Bench, p, cell.Pthreads, cell.OmpSs, cell.Factor())
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ompss-bench: "+format+"\n", args...)
	os.Exit(1)
}
