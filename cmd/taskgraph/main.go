// Command taskgraph renders the OmpSs task dependence graph of a demo
// program in Graphviz DOT — the usability-study companion to the paper's §3
// Listing 1 discussion (it makes the pipeline's dependence structure
// visible).
//
//	taskgraph -demo pipeline > pipeline.dot   # Listing 1 shape
//	taskgraph -demo cholesky -nb 4            # dataflow beyond pipelines
//	taskgraph -demo diamond                   # the smallest interesting DAG
//
// Render with `dot -Tsvg pipeline.dot -o pipeline.svg`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ompssgo/internal/kernels/linalg"
	"ompssgo/internal/obs"
	"ompssgo/ompss"
)

// demoNames lists the valid -demo values, for help and typo messages.
var demoNames = []string{"pipeline", "cholesky", "diamond"}

func main() {
	var (
		demo  = flag.String("demo", "pipeline", "graph to emit: "+strings.Join(demoNames, "|"))
		n     = flag.Int("n", 6, "pipeline iterations")
		nb    = flag.Int("nb", 3, "cholesky blocks per dimension")
		trace = flag.String("trace", "", "also export a Chrome trace (chrome://tracing / Perfetto) to this file")
	)
	flag.Parse()

	tr := ompss.NewTracer()
	rt := ompss.New(ompss.Workers(2), ompss.Trace(tr))

	switch *demo {
	case "pipeline":
		pipeline(rt, *n)
	case "cholesky":
		cholesky(rt, *nb)
	case "diamond":
		diamond(rt)
	default:
		fmt.Fprintf(os.Stderr, "taskgraph: unknown demo %q\nvalid demos: %s\n",
			*demo, strings.Join(demoNames, ", "))
		os.Exit(1)
	}
	rt.Shutdown()
	if err := tr.WriteDOT(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "taskgraph: %v\n", err)
		os.Exit(1)
	}
	if *trace != "" {
		if err := exportChrome(tr, *trace); err != nil {
			fmt.Fprintf(os.Stderr, "taskgraph: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "taskgraph: Chrome trace -> %s\n", *trace)
	}
	sum := tr.Summary()
	fmt.Fprintf(os.Stderr, "taskgraph: %d tasks, %d edges, max concurrency %d\n",
		sum.Tasks, sum.Edges, sum.MaxConcurrent)
}

// exportChrome writes the demo run's full observability stream as Chrome
// trace-event JSON.
func exportChrome(tr *ompss.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, tr.Recorder().Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pipeline spawns the Listing 1 shape: per iteration, read→parse→decode→
// output tasks chained by stage contexts and renamed circular-buffer
// slots. Contexts and slots are registered data handles — they recur every
// iteration, so the clauses resolve with no key hashing at submit.
func pipeline(rt *ompss.Runtime, iters int) {
	const N = 3
	rc := rt.Register(new(int))
	pc := rt.Register(new(int))
	ec := rt.Register(new(int))
	oc := rt.Register(new(int))
	frames := make([]int, N)
	slots := make([]*ompss.Datum, N)
	for i := range slots {
		slots[i] = rt.Register(&frames[i])
	}
	for k := 0; k < iters; k++ {
		k := k
		slot := slots[k%N]
		rt.Task(func(*ompss.TC) {}, ompss.InOut(rc), ompss.Out(slot),
			ompss.Label(fmt.Sprintf("read %d", k)))
		rt.Task(func(*ompss.TC) {}, ompss.InOut(pc), ompss.InOut(slot),
			ompss.Label(fmt.Sprintf("parse %d", k)))
		rt.Task(func(*ompss.TC) {}, ompss.InOut(ec), ompss.InOut(slot),
			ompss.Label(fmt.Sprintf("decode %d", k)))
		rt.Task(func(*ompss.TC) {}, ompss.InOut(oc), ompss.In(slot),
			ompss.Label(fmt.Sprintf("output %d", k)))
		rt.TaskwaitOn(rc)
	}
	rt.Taskwait()
}

// cholesky spawns the classic blocked right-looking factorization task
// graph over an nb×nb blocked SPD matrix.
func cholesky(rt *ompss.Runtime, nb int) {
	m := linalg.NewMatrix(nb, 4)
	m.GenSPD(1)
	for k := 0; k < nb; k++ {
		k := k
		rt.Task(func(*ompss.TC) { linalg.POTRF(m.Blocks[k][k]) },
			ompss.InOut(m.Blocks[k][k]), ompss.Label(fmt.Sprintf("potrf %d", k)))
		for i := k + 1; i < nb; i++ {
			i := i
			rt.Task(func(*ompss.TC) { linalg.TRSM(m.Blocks[k][k], m.Blocks[i][k]) },
				ompss.In(m.Blocks[k][k]), ompss.InOut(m.Blocks[i][k]),
				ompss.Label(fmt.Sprintf("trsm %d,%d", i, k)))
		}
		for i := k + 1; i < nb; i++ {
			i := i
			rt.Task(func(*ompss.TC) { linalg.SYRK(m.Blocks[i][k], m.Blocks[i][i]) },
				ompss.In(m.Blocks[i][k]), ompss.InOut(m.Blocks[i][i]),
				ompss.Label(fmt.Sprintf("syrk %d", i)))
			for j := k + 1; j < i; j++ {
				j := j
				rt.Task(func(*ompss.TC) { linalg.GEMM(m.Blocks[i][k], m.Blocks[j][k], m.Blocks[i][j]) },
					ompss.In(m.Blocks[i][k]), ompss.In(m.Blocks[j][k]), ompss.InOut(m.Blocks[i][j]),
					ompss.Label(fmt.Sprintf("gemm %d,%d", i, j)))
			}
		}
	}
	rt.Taskwait()
}

// diamond spawns the four-task diamond through the handle API: registered
// datums for the three data, error-returning Go spawns, and a final
// Handle.Err check.
func diamond(rt *ompss.Runtime) {
	x, y, z := new(int), new(int), new(int)
	dx, dy, dz := rt.Register(x), rt.Register(y), rt.Register(z)
	rt.Go(func(*ompss.TC) error { *x = 1; return nil }, ompss.Out(dx), ompss.Label("top"))
	rt.Go(func(*ompss.TC) error { *y = *x; return nil }, ompss.In(dx), ompss.Out(dy), ompss.Label("left"))
	rt.Go(func(*ompss.TC) error { *z = *x; return nil }, ompss.In(dx), ompss.Out(dz), ompss.Label("right"))
	bottom := rt.Go(func(*ompss.TC) error { _ = *y + *z; return nil },
		ompss.In(dy), ompss.In(dz), ompss.Label("bottom"))
	rt.Taskwait()
	if err := bottom.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "taskgraph: diamond failed: %v\n", err)
	}
}
