// Command ompss-serve runs the multi-tenant service runtime: one persistent
// ompss.Runtime hosting the suite's media kernels behind HTTP, one
// request-scoped ompss.Session per request (internal/serve).
//
//	ompss-serve -addr :8080
//	    serve /healthz, /v1/rotate, /v1/rgbcmy, /v1/h264dec, /v1/fault,
//	    /v1/stats until interrupted; on SIGINT/SIGTERM the server drains —
//	    new session-bearing requests answer 503, live sessions finish
//	    (bounded by -drain-timeout), and the process exits 0
//	ompss-serve -load -duration 5s -conc 8 -o BENCH_serve.json
//	    drive the handler in-process with concurrent clients and record
//	    p50/p90/p99 latency, requests/s, tasks/s, and the isolation
//	    violation count; exits 1 on zero successful responses or any
//	    violation
//	ompss-serve -load -target http://host:8080 ...
//	    same, against a remote ompss-serve over real HTTP
//
// Tenancy: requests carry X-Tenant: gold|silver|bronze; the server maps the
// class onto the scheduler's priority lanes via the session's Tenant option.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"ompssgo/internal/obs"
	"ompssgo/internal/serve"
	"ompssgo/ompss"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (serve mode)")
		load       = flag.Bool("load", false, "run the load generator instead of serving")
		duration   = flag.Duration("duration", 3*time.Second, "load duration")
		conc       = flag.Int("conc", 8, "concurrent load clients")
		mix        = flag.String("mix", "rotate,rgbcmy,h264dec", "endpoint mix the clients cycle")
		faultEvery = flag.Int("fault-every", 7, "inject a /v1/fault request every Nth request per client (0 = none)")
		target     = flag.String("target", "", "load a remote server at this base URL instead of in-process")
		workers    = flag.Int("workers", 0, "runtime worker threads (0 = NumCPU)")
		sessLimit  = flag.Int("session-inflight", 256, "per-session MaxInFlight budget (0 = unlimited)")
		globLimit  = flag.Int("max-inflight", 0, "global MaxInFlight limiter across all sessions (0 = unlimited)")
		reject     = flag.Bool("reject", false, "RejectOnFull admission for request sessions (default BlockOnFull)")
		blocking   = flag.Bool("blocking", true, "Blocking wait mode (idle workers park; -blocking=false polls)")
		out        = flag.String("o", "", "write the load report JSON here")
		tracePath  = flag.String("trace", "", "record an observability trace of the load run here (filter per session with ompss-trace analyze -session)")
		tuned      = flag.Bool("tune", true, "run the self-tuning feedback loops (exposes setpoint gauges on /metrics)")
		drainT     = flag.Duration("drain-timeout", 10*time.Second, "deadline for draining live sessions on SIGINT/SIGTERM (serve mode)")
	)
	flag.Parse()
	if err := run(*addr, *load, *duration, *conc, *mix, *faultEvery, *target,
		*workers, *sessLimit, *globLimit, *reject, *blocking, *tuned, *out, *tracePath, *drainT); err != nil {
		fmt.Fprintf(os.Stderr, "ompss-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, load bool, duration time.Duration, conc int, mix string,
	faultEvery int, target string, workers, sessLimit, globLimit int,
	reject, blocking, tuned bool, out, tracePath string, drainT time.Duration) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	opts := []ompss.Option{ompss.Workers(workers)}
	if blocking {
		opts = append(opts, ompss.Wait(ompss.Blocking))
	}
	if globLimit > 0 {
		opts = append(opts, ompss.MaxInFlight(globLimit))
	}
	if tuned {
		// Grain and backoff adapt online; renaming stays on its static
		// default — request sessions own their data, so version pressure
		// never builds and an adaptive cap would just idle.
		opts = append(opts, ompss.WithTuning(ompss.Tuning{
			Grain: ompss.Auto, StealBackoff: ompss.Auto,
		}))
	}
	var rec *obs.Recorder
	if tracePath != "" {
		rec = obs.NewRecorder()
		opts = append(opts, ompss.Observe(rec))
	}
	rt := ompss.New(opts...)
	defer rt.Shutdown()

	admission := ompss.BlockOnFull
	if reject {
		admission = ompss.RejectOnFull
	}
	srv := serve.New(rt, serve.Config{SessionInFlight: sessLimit, Admission: admission, Recorder: rec})

	if !load {
		return serveUntilSignalled(addr, workers, sessLimit, drainT, srv)
	}

	var paths []string
	for _, m := range strings.Split(mix, ",") {
		if m = strings.TrimSpace(m); m != "" {
			paths = append(paths, "/v1/"+m)
		}
	}
	rep := serve.RunLoad(srv, serve.LoadOptions{
		Duration:   duration,
		Conc:       conc,
		Mix:        paths,
		FaultEvery: faultEvery,
		Target:     target,
	}, workers, globLimit)
	rep.WriteTable(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if rep.OK2xx == 0 {
		return fmt.Errorf("load run produced no successful responses")
	}
	if rep.Violations > 0 {
		return fmt.Errorf("load run observed %d isolation violations", rep.Violations)
	}
	return nil
}

// serveUntilSignalled listens until SIGINT/SIGTERM, then drains: the server
// stops admitting session-bearing requests (503 + Retry-After), live
// sessions run to completion under drainT, the listener shuts down, and the
// process exits 0. Sessions still live at the deadline are abandoned to the
// runtime's Shutdown barrier — the exit is still clean, just noisier.
func serveUntilSignalled(addr string, workers, sessLimit int, drainT time.Duration, srv *serve.Server) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ompss-serve: listening on %s (workers=%d session-inflight=%d drain-timeout=%v)\n",
		addr, workers, sessLimit, drainT)

	select {
	case err := <-errc:
		return err // listener died on its own (bad addr, port in use)
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second ^C kills immediately

	fmt.Fprintf(os.Stderr, "ompss-serve: signal received, draining (deadline %v)\n", drainT)
	dctx, cancel := context.WithTimeout(context.Background(), drainT)
	defer cancel()
	drainErr := srv.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil {
		hs.Close()
	}
	<-errc // reap the ListenAndServe goroutine (returns ErrServerClosed)
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "ompss-serve: %v — exiting anyway\n", drainErr)
	} else {
		fmt.Fprintln(os.Stderr, "ompss-serve: drained, exiting")
	}
	return nil
}
