package pthread

import (
	"sync"

	"ompssgo/internal/vm"
)

// RWLock is a writer-preferring reader-writer lock
// (pthread_rwlock_t-style). Create with API.NewRWLock.
type RWLock struct {
	// native
	n sync.RWMutex

	// sim: state machine over the machine's mutex/cond primitives.
	m        *vm.Mutex
	rcond    *vm.Cond
	wcond    *vm.Cond
	readers  int
	writer   bool
	writersQ int
}

// NewRWLock creates a reader-writer lock for this environment.
func (a *API) NewRWLock() *RWLock {
	l := &RWLock{}
	if a.sim != nil {
		l.m = &vm.Mutex{}
		l.rcond = &vm.Cond{}
		l.wcond = &vm.Cond{}
	}
	return l
}

// RLock acquires l for reading; readers share, but queued writers are
// preferred (no writer starvation).
func (t *Thread) RLock(l *RWLock) {
	if t.vt == nil {
		l.n.RLock()
		return
	}
	t.vt.Lock(l.m)
	for l.writer || l.writersQ > 0 {
		t.vt.CondWait(l.rcond, l.m)
	}
	l.readers++
	t.vt.Unlock(l.m)
}

// RUnlock releases a read hold.
func (t *Thread) RUnlock(l *RWLock) {
	if t.vt == nil {
		l.n.RUnlock()
		return
	}
	t.vt.Lock(l.m)
	l.readers--
	if l.readers == 0 {
		t.vt.CondSignal(l.wcond)
	}
	t.vt.Unlock(l.m)
}

// WLock acquires l exclusively.
func (t *Thread) WLock(l *RWLock) {
	if t.vt == nil {
		l.n.Lock()
		return
	}
	t.vt.Lock(l.m)
	l.writersQ++
	for l.writer || l.readers > 0 {
		t.vt.CondWait(l.wcond, l.m)
	}
	l.writersQ--
	l.writer = true
	t.vt.Unlock(l.m)
}

// WUnlock releases the exclusive hold, preferring a queued writer.
func (t *Thread) WUnlock(l *RWLock) {
	if t.vt == nil {
		l.n.Unlock()
		return
	}
	t.vt.Lock(l.m)
	l.writer = false
	if l.writersQ > 0 {
		t.vt.CondSignal(l.wcond)
	} else {
		t.vt.CondBroadcast(l.rcond)
	}
	t.vt.Unlock(l.m)
}

// Semaphore is a counting semaphore (sem_t-style). Create with
// API.NewSemaphore.
type Semaphore struct {
	// native
	mu sync.Mutex
	cv *sync.Cond

	// sim
	m    *vm.Mutex
	cond *vm.Cond

	count int
}

// NewSemaphore creates a semaphore with the given initial count.
func (a *API) NewSemaphore(initial int) *Semaphore {
	s := &Semaphore{count: initial}
	if a.sim != nil {
		s.m = &vm.Mutex{}
		s.cond = &vm.Cond{}
	} else {
		s.cv = sync.NewCond(&s.mu)
	}
	return s
}

// Acquire decrements the semaphore, blocking while it is zero (sem_wait).
func (t *Thread) Acquire(s *Semaphore) {
	if t.vt == nil {
		s.mu.Lock()
		for s.count == 0 {
			s.cv.Wait()
		}
		s.count--
		s.mu.Unlock()
		return
	}
	t.vt.Lock(s.m)
	for s.count == 0 {
		t.vt.CondWait(s.cond, s.m)
	}
	s.count--
	t.vt.Unlock(s.m)
}

// TryAcquire decrements without blocking; reports success (sem_trywait).
func (t *Thread) TryAcquire(s *Semaphore) bool {
	if t.vt == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.count == 0 {
			return false
		}
		s.count--
		return true
	}
	t.vt.Lock(s.m)
	ok := s.count > 0
	if ok {
		s.count--
	}
	t.vt.Unlock(s.m)
	return ok
}

// Release increments the semaphore and wakes one waiter (sem_post).
func (t *Thread) Release(s *Semaphore) {
	if t.vt == nil {
		s.mu.Lock()
		s.count++
		s.cv.Signal()
		s.mu.Unlock()
		return
	}
	t.vt.Lock(s.m)
	s.count++
	t.vt.CondSignal(s.cond)
	t.vt.Unlock(s.m)
}
