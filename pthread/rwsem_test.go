package pthread

import (
	"sync/atomic"
	"testing"
	"time"

	"ompssgo/machine"
)

func TestNativeRWLockSharedReads(t *testing.T) {
	api := Native(4)
	l := api.NewRWLock()
	var data int64 = 42
	var reads int64
	api.Main().Parallel(func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.RLock(l)
			if atomic.LoadInt64(&data)%2 != 0 {
				t.Error("observed odd intermediate value under read lock")
			}
			atomic.AddInt64(&reads, 1)
			th.RUnlock(l)
			if th.ID() == 0 && i%10 == 0 {
				th.WLock(l)
				// Writers make two dependent updates; readers must never
				// see the intermediate odd state.
				atomic.AddInt64(&data, 1)
				atomic.AddInt64(&data, 1)
				th.WUnlock(l)
			}
		}
	})
	if reads != 400 {
		t.Fatalf("reads = %d", reads)
	}
}

func TestNativeSemaphoreBoundsConcurrency(t *testing.T) {
	api := Native(8)
	sem := api.NewSemaphore(3)
	var inside, peak int64
	api.Main().Parallel(func(th *Thread) {
		for i := 0; i < 20; i++ {
			th.Acquire(sem)
			n := atomic.AddInt64(&inside, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
					break
				}
			}
			atomic.AddInt64(&inside, -1)
			th.Release(sem)
		}
	})
	if peak > 3 {
		t.Fatalf("semaphore admitted %d concurrent holders, cap 3", peak)
	}
}

func TestNativeTryAcquire(t *testing.T) {
	api := Native(1)
	sem := api.NewSemaphore(1)
	main := api.Main()
	if !main.TryAcquire(sem) {
		t.Fatal("first try should succeed")
	}
	if main.TryAcquire(sem) {
		t.Fatal("second try should fail")
	}
	main.Release(sem)
	if !main.TryAcquire(sem) {
		t.Fatal("try after release should succeed")
	}
}

func TestSimRWLockReadersShareWritersExclude(t *testing.T) {
	// 4 readers of 1ms each under a read lock overlap (≈1ms total); the
	// same work under the write lock serializes (≈4ms).
	run := func(exclusive bool) time.Duration {
		st, err := RunSim(machine.Paper(4), 4, func(main *Thread) {
			api := main.API()
			l := api.NewRWLock()
			main.Parallel(func(th *Thread) {
				if exclusive {
					th.WLock(l)
					th.Compute(time.Millisecond)
					th.WUnlock(l)
				} else {
					th.RLock(l)
					th.Compute(time.Millisecond)
					th.RUnlock(l)
				}
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Makespan
	}
	shared, exclusive := run(false), run(true)
	if float64(exclusive)/float64(shared) < 2.5 {
		t.Fatalf("write lock should serialize: shared=%v exclusive=%v", shared, exclusive)
	}
}

func TestSimSemaphorePipelineBound(t *testing.T) {
	// A semaphore of 2 gates 8 one-millisecond jobs on 8 cores: makespan
	// must reflect the concurrency cap (≈4ms), not full parallelism.
	st, err := RunSim(machine.Paper(8), 8, func(main *Thread) {
		api := main.API()
		sem := api.NewSemaphore(2)
		main.Parallel(func(th *Thread) {
			th.Acquire(sem)
			th.Compute(time.Millisecond)
			th.Release(sem)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Makespan < 3900*time.Microsecond {
		t.Fatalf("semaphore cap not enforced: makespan %v", st.Makespan)
	}
}

func TestSimRWLockWriterNotStarved(t *testing.T) {
	// Readers hammer the lock; a writer must still get in (writer
	// preference) and the run must terminate.
	var writes int
	_, err := RunSim(machine.Paper(4), 4, func(main *Thread) {
		api := main.API()
		l := api.NewRWLock()
		main.Parallel(func(th *Thread) {
			if th.ID() == 0 {
				for w := 0; w < 5; w++ {
					th.WLock(l)
					writes++
					th.Compute(100 * time.Microsecond)
					th.WUnlock(l)
				}
				return
			}
			for i := 0; i < 30; i++ {
				th.RLock(l)
				th.Compute(50 * time.Microsecond)
				th.RUnlock(l)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if writes != 5 {
		t.Fatalf("writer completed %d/5 writes", writes)
	}
}
