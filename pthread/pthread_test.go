package pthread

import (
	"sync/atomic"
	"testing"
	"time"

	"ompssgo/machine"
)

func TestNativeParallelSPMD(t *testing.T) {
	api := Native(4)
	var sum int64
	ids := make([]bool, 4)
	api.Main().Parallel(func(th *Thread) {
		atomic.AddInt64(&sum, 1)
		ids[th.ID()] = true
	})
	if sum != 4 {
		t.Fatalf("ran %d threads, want 4", sum)
	}
	for i, ok := range ids {
		if !ok {
			t.Fatalf("thread id %d missing", i)
		}
	}
}

func TestNativeMutexCounter(t *testing.T) {
	api := Native(8)
	m := api.NewMutex()
	counter := 0
	api.Main().Parallel(func(th *Thread) {
		for i := 0; i < 500; i++ {
			th.Lock(m)
			counter++
			th.Unlock(m)
		}
	})
	if counter != 4000 {
		t.Fatalf("counter = %d, want 4000", counter)
	}
}

func TestNativeBarrierPhases(t *testing.T) {
	const n, rounds = 4, 10
	api := Native(n)
	b := api.NewBarrier(n)
	var phase [n]int64
	api.Main().Parallel(func(th *Thread) {
		for r := 0; r < rounds; r++ {
			atomic.StoreInt64(&phase[th.ID()], int64(r))
			th.Barrier(b)
			for j := 0; j < n; j++ {
				if p := atomic.LoadInt64(&phase[j]); p < int64(r) {
					t.Errorf("thread %d saw stale phase %d in round %d", th.ID(), p, r)
				}
			}
			th.Barrier(b)
		}
	})
}

func TestNativeSpinBarrierPhases(t *testing.T) {
	const n, rounds = 4, 10
	api := Native(n)
	b := api.NewSpinBarrier(n)
	var lastCount int64
	api.Main().Parallel(func(th *Thread) {
		for r := 0; r < rounds; r++ {
			if th.SpinBarrier(b) {
				atomic.AddInt64(&lastCount, 1)
			}
		}
	})
	if lastCount != rounds {
		t.Fatalf("serial-thread count = %d, want %d", lastCount, rounds)
	}
}

func TestNativeCondProducerConsumer(t *testing.T) {
	api := Native(2)
	m := api.NewMutex()
	c := api.NewCond(m)
	queue := []int{}
	got := []int{}
	main := api.Main()
	cons := main.Spawn("consumer", func(th *Thread) {
		for len(got) < 10 {
			th.Lock(m)
			for len(queue) == 0 {
				th.Wait(c)
			}
			got = append(got, queue[0])
			queue = queue[1:]
			th.Unlock(m)
		}
	})
	prod := main.Spawn("producer", func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Lock(m)
			queue = append(queue, i*i)
			th.Signal(c)
			th.Unlock(m)
		}
	})
	main.Join(prod)
	main.Join(cons)
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestNativeSpinVarWavefront(t *testing.T) {
	api := Native(2)
	progress := api.NewSpinVar()
	data := make([]int, 20)
	out := make([]int, 20)
	main := api.Main()
	consumer := main.Spawn("c", func(th *Thread) {
		for i := range out {
			th.WaitGE(progress, int64(i+1))
			out[i] = data[i] * 2
		}
	})
	for i := range data {
		data[i] = i + 1
		main.Add(progress, 1)
	}
	main.Join(consumer)
	for i, v := range out {
		if v != (i+1)*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestSimParallelComputesRealResults(t *testing.T) {
	res := make([]int, 8)
	st, err := RunSim(machine.Paper(8), 8, func(main *Thread) {
		main.Parallel(func(th *Thread) {
			th.Compute(100 * time.Microsecond)
			res[th.ID()] = th.ID() * 3
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != i*3 {
			t.Fatalf("res[%d] = %d", i, v)
		}
	}
	if st.Makespan < 100*time.Microsecond {
		t.Fatalf("makespan %v below thread work", st.Makespan)
	}
}

func TestSimParallelSpeedup(t *testing.T) {
	measure := func(p int) time.Duration {
		st, err := RunSim(machine.Paper(p), p, func(main *Thread) {
			main.Parallel(func(th *Thread) {
				// Each thread does an equal share of 8ms total work.
				th.Compute(time.Duration(8000/p) * time.Microsecond)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Makespan
	}
	t1, t8 := measure(1), measure(8)
	sp := float64(t1) / float64(t8)
	if sp < 5 || sp > 8.5 {
		t.Fatalf("8-thread speedup = %.2f (t1=%v, t8=%v)", sp, t1, t8)
	}
}

func TestSimBarrierVsSpinBarrierShortPhases(t *testing.T) {
	// rgbcmy's mechanism from the Pthreads side: blocking barriers cost
	// per-waiter wakes each round; spin barriers do not.
	run := func(spin bool) time.Duration {
		st, err := RunSim(machine.Paper(16), 16, func(main *Thread) {
			api := main.API()
			bb := api.NewBarrier(16)
			sb := api.NewSpinBarrier(16)
			main.Parallel(func(th *Thread) {
				for r := 0; r < 30; r++ {
					th.Compute(25 * time.Microsecond)
					if spin {
						th.SpinBarrier(sb)
					} else {
						th.Barrier(bb)
					}
				}
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Makespan
	}
	blocking, spinning := run(false), run(true)
	if spinning >= blocking {
		t.Fatalf("spin barrier (%v) should beat blocking barrier (%v)", spinning, blocking)
	}
}

func TestSimDeterministicReplay(t *testing.T) {
	run := func() machine.Stats {
		st, err := RunSim(machine.Paper(8), 8, func(main *Thread) {
			api := main.API()
			m := api.NewMutex()
			b := api.NewBarrier(8)
			shared := 0
			main.Parallel(func(th *Thread) {
				th.Compute(time.Duration(th.ID()+1) * 50 * time.Microsecond)
				th.Barrier(b)
				th.Lock(m)
				shared++
				th.Unlock(m)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Events != b.Events {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}

func TestSimPipelineSpawnJoin(t *testing.T) {
	sum := 0
	_, err := RunSim(machine.Paper(4), 4, func(main *Thread) {
		api := main.API()
		q := api.NewSpinVar()
		buf := make([]int, 16)
		prod := main.Spawn("prod", func(th *Thread) {
			for i := range buf {
				th.Compute(30 * time.Microsecond)
				buf[i] = i
				th.Add(q, 1)
			}
		})
		cons := main.Spawn("cons", func(th *Thread) {
			for i := range buf {
				th.WaitGE(q, int64(i+1))
				th.Compute(20 * time.Microsecond)
				sum += buf[i]
			}
		})
		main.Join(prod)
		main.Join(cons)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 120 {
		t.Fatalf("pipeline sum = %d, want 120", sum)
	}
}

func TestSimOversubscriptionStillCompletes(t *testing.T) {
	// 8 threads on 2 cores: the quantum scheduler must interleave them.
	st, err := RunSim(machine.Paper(2), 8, func(main *Thread) {
		api := main.API()
		b := api.NewBarrier(8)
		main.Parallel(func(th *Thread) {
			th.Compute(500 * time.Microsecond)
			th.Barrier(b)
			th.Compute(200 * time.Microsecond)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8×700µs of work on 2 cores ≥ 2.8ms.
	if st.Makespan < 2800*time.Microsecond {
		t.Fatalf("oversubscribed makespan %v below work bound", st.Makespan)
	}
}

func TestNativeVsSimSameResults(t *testing.T) {
	program := func(main *Thread) []int {
		api := main.API()
		n := api.Threads()
		b := api.NewBarrier(n)
		data := make([]int, n)
		main.Parallel(func(th *Thread) {
			data[th.ID()] = th.ID() + 1
			th.Barrier(b)
			// Neighbour sum after the barrier (needs the barrier for
			// correctness).
			right := data[(th.ID()+1)%n]
			th.Barrier(b)
			data[th.ID()] += right
		})
		return data
	}
	var simRes []int
	if _, err := RunSim(machine.Paper(4), 4, func(m *Thread) { simRes = program(m) }); err != nil {
		t.Fatal(err)
	}
	nativeRes := program(Native(4).Main())
	for i := range simRes {
		if simRes[i] != nativeRes[i] {
			t.Fatalf("sim %v != native %v", simRes, nativeRes)
		}
	}
}
