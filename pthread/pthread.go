// Package pthread is the manual-threading substrate the paper compares OmpSs
// against: threads, mutexes, condition variables, blocking barriers, spin
// barriers, and atomic progress counters (the line-decoding sync of the
// optimized Pthreads H.264 decoder, paper §4).
//
// Like package ompss, it has two backends sharing one API:
//
//   - Native executes threads as goroutines with sync/atomic primitives.
//   - RunSim executes the same program on the simulated cc-NUMA machine
//     (package machine), with blocking primitives paying OS wake latencies
//     and spinning primitives holding their cores — exactly the distinction
//     the paper's rgbcmy analysis hinges on.
//
// Programs are written against *Thread: the main program receives the master
// thread, spawns workers with Parallel (SPMD, join-all) or Spawn/Join
// (pipelines), and synchronizes through the primitive methods. Compute and
// Touch are simulation cost annotations (no-ops natively, where the real
// work is the cost).
package pthread

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ompssgo/internal/vm"
)

// API is a Pthreads-style threading environment. Create with Native or
// receive one via RunSim.
type API struct {
	threads int
	sim     *simEnv // nil for native
	nextID  int64   // spawn counter (core assignment + thread IDs)
}

// Native creates a goroutine-backed environment whose Parallel launches
// `threads` threads.
func Native(threads int) *API {
	if threads < 1 {
		threads = 1
	}
	return &API{threads: threads}
}

// Threads returns the SPMD width used by Parallel.
func (a *API) Threads() int { return a.threads }

// Main returns the master thread bound to the calling goroutine (native
// environments only; RunSim provides the master thread itself).
func (a *API) Main() *Thread {
	return &Thread{api: a, id: -1, name: "main"}
}

// Thread is one thread of execution. All methods must be called by the
// thread itself (as with a pthread_t owned by its function).
type Thread struct {
	api  *API
	id   int
	name string

	// native join support
	done chan struct{}

	// sim state
	vt       *vm.Thread
	finished bool
	joiners  []*vm.Thread
}

// ID returns the thread's index: 0..Threads()-1 inside Parallel, a unique
// counter for Spawn, −1 for the master.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// API returns the owning environment.
func (t *Thread) API() *API { return t.api }

// Parallel launches Threads() threads running body (with IDs 0..n−1) and
// joins them all — the create/join SPMD skeleton of the paper's Pthreads
// benchmark variants.
func (t *Thread) Parallel(body func(*Thread)) {
	n := t.api.threads
	ths := make([]*Thread, n)
	for i := 0; i < n; i++ {
		ths[i] = t.spawn("par", i, i, body)
	}
	for _, th := range ths {
		t.Join(th)
	}
}

// Spawn starts one named thread (pipeline style). Pair with Join.
func (t *Thread) Spawn(name string, body func(*Thread)) *Thread {
	id := int(atomic.AddInt64(&t.api.nextID, 1)) - 1
	return t.spawn(name, id, id, body)
}

func (t *Thread) spawn(name string, id, pin int, body func(*Thread)) *Thread {
	th := &Thread{api: t.api, id: id, name: name}
	if t.api.sim == nil {
		th.done = make(chan struct{})
		go func() {
			body(th)
			close(th.done)
		}()
		return th
	}
	env := t.api.sim
	core := pin % env.v.Cores()
	t.vt.Go(name, core, func(vt *vm.Thread) {
		th.vt = vt
		body(th)
		th.finished = true
		for _, j := range th.joiners {
			env.v.WakeAt(j, env.v.Now()+env.v.Cost().CondWake)
		}
		th.joiners = nil
	})
	return th
}

// Join blocks until o finishes (pthread_join).
func (t *Thread) Join(o *Thread) {
	if t.api.sim == nil {
		<-o.done
		return
	}
	for !o.finished {
		o.joiners = append(o.joiners, t.vt)
		t.vt.Block("join")
	}
}

// Compute charges d of work to the thread on the simulated machine; a no-op
// natively (the body's real work is the cost).
func (t *Thread) Compute(d time.Duration) {
	if t.vt != nil && d > 0 {
		t.vt.Compute(vm.Time(d))
	}
}

// Touch charges the simulated memory-system cost of streaming `bytes` of the
// datum identified by key (cache warmth / NUMA placement dependent); a no-op
// natively.
func (t *Thread) Touch(key any, bytes int64, write bool) {
	if t.vt != nil {
		t.vt.Compute(t.vt.TouchCost(key, bytes, write))
	}
}

// Yield hints the scheduler to run another thread (sched_yield).
func (t *Thread) Yield() {
	if t.vt != nil {
		t.vt.Yield()
		return
	}
	runtime.Gosched()
}

// Mutex is a blocking lock. Create with API.NewMutex.
type Mutex struct {
	n sync.Mutex
	s *vm.Mutex
}

// NewMutex creates a mutex for this environment.
func (a *API) NewMutex() *Mutex {
	m := &Mutex{}
	if a.sim != nil {
		m.s = &vm.Mutex{}
	}
	return m
}

// Lock acquires m.
func (t *Thread) Lock(m *Mutex) {
	if t.vt != nil {
		t.vt.Lock(m.s)
		return
	}
	m.n.Lock()
}

// Unlock releases m.
func (t *Thread) Unlock(m *Mutex) {
	if t.vt != nil {
		t.vt.Unlock(m.s)
		return
	}
	m.n.Unlock()
}

// Cond is a condition variable bound to a Mutex.
type Cond struct {
	n *sync.Cond
	s *vm.Cond
	m *Mutex
}

// NewCond creates a condition variable using m.
func (a *API) NewCond(m *Mutex) *Cond {
	c := &Cond{m: m}
	if a.sim != nil {
		c.s = &vm.Cond{}
	} else {
		c.n = sync.NewCond(&m.n)
	}
	return c
}

// Wait atomically releases the cond's mutex and blocks until signalled;
// callers re-check their predicate in a loop as usual.
func (t *Thread) Wait(c *Cond) {
	if t.vt != nil {
		t.vt.CondWait(c.s, c.m.s)
		return
	}
	c.n.Wait()
}

// Signal wakes one waiter.
func (t *Thread) Signal(c *Cond) {
	if t.vt != nil {
		t.vt.CondSignal(c.s)
		return
	}
	c.n.Signal()
}

// Broadcast wakes all waiters.
func (t *Thread) Broadcast(c *Cond) {
	if t.vt != nil {
		t.vt.CondBroadcast(c.s)
		return
	}
	c.n.Broadcast()
}

// Barrier is a blocking thread barrier (pthread_barrier_t): waiters sleep
// and pay a wake latency on release.
type Barrier struct {
	// native: generation barrier on a condvar
	mu      sync.Mutex
	cv      *sync.Cond
	n       int
	arrived int
	gen     uint64

	s *vm.Barrier
}

// NewBarrier creates a barrier for n participants.
func (a *API) NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	if a.sim != nil {
		b.s = &vm.Barrier{N: n}
	} else {
		b.cv = sync.NewCond(&b.mu)
	}
	return b
}

// Barrier waits at b; returns true on the last arriver (the serial thread).
func (t *Thread) Barrier(b *Barrier) bool {
	if t.vt != nil {
		return t.vt.BarrierWait(b.s)
	}
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cv.Broadcast()
		b.mu.Unlock()
		return true
	}
	for gen == b.gen {
		b.cv.Wait()
	}
	b.mu.Unlock()
	return false
}

// SpinBarrier is a busy-waiting barrier: waiters keep their cores and
// observe the release with polling latency (the OmpSs-runtime style; the
// paper's rgbcmy analysis contrasts it with the blocking Barrier).
type SpinBarrier struct {
	n       int
	arrived atomic.Int32
	gen     atomic.Uint64

	s *vm.SpinBarrier
}

// NewSpinBarrier creates a polling barrier for n participants.
func (a *API) NewSpinBarrier(n int) *SpinBarrier {
	b := &SpinBarrier{n: n}
	if a.sim != nil {
		b.s = &vm.SpinBarrier{N: n}
	}
	return b
}

// SpinBarrier waits at b, busy-waiting; returns true on the last arriver.
func (t *Thread) SpinBarrier(b *SpinBarrier) bool {
	if t.vt != nil {
		return t.vt.SpinBarrierWait(b.s)
	}
	gen := b.gen.Load()
	if int(b.arrived.Add(1)) == b.n {
		b.arrived.Store(0)
		b.gen.Add(1)
		return true
	}
	for b.gen.Load() == gen {
		runtime.Gosched()
	}
	return false
}

// SpinVar is an atomic progress counter with busy-waiting observers — the
// per-line decoded-macroblock counters of wavefront H.264 decoding.
type SpinVar struct {
	n atomic.Int64
	s *vm.SpinVar
}

// NewSpinVar creates a progress counter starting at 0.
func (a *API) NewSpinVar() *SpinVar {
	v := &SpinVar{}
	if a.sim != nil {
		v.s = &vm.SpinVar{}
	}
	return v
}

// Store publishes a new value.
func (t *Thread) Store(v *SpinVar, x int64) {
	if t.vt != nil {
		t.vt.SpinStore(v.s, x)
		return
	}
	v.n.Store(x)
}

// Add atomically adds delta and returns the new value.
func (t *Thread) Add(v *SpinVar, delta int64) int64 {
	if t.vt != nil {
		return t.vt.SpinAdd(v.s, delta)
	}
	return v.n.Add(delta)
}

// Load reads the current value.
func (t *Thread) Load(v *SpinVar) int64 {
	if t.vt != nil {
		return t.vt.SpinLoad(v.s)
	}
	return v.n.Load()
}

// WaitGE busy-waits until v reaches at least x.
func (t *Thread) WaitGE(v *SpinVar, x int64) {
	if t.vt != nil {
		t.vt.SpinWaitGE(v.s, x)
		return
	}
	for v.n.Load() < x {
		runtime.Gosched()
	}
}
