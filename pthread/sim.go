package pthread

import (
	"time"

	"ompssgo/internal/vm"
	"ompssgo/machine"
)

// simEnv binds an API to a simulated machine.
type simEnv struct {
	v *vm.VM
}

// RunSim executes a Pthreads-style program on the simulated cc-NUMA machine.
// The program runs in the master virtual thread on core 0; threads spawned
// with Parallel are pinned to cores 0..n−1 (wrapping — and timesliced — when
// threads exceed cores, as on the paper's machine they never do). All
// synchronization costs come from the same machine cost model the ompss
// simulation backend uses, so cross-model comparisons are apples-to-apples.
func RunSim(mc machine.Config, threads int, program func(*Thread)) (machine.Stats, error) {
	if mc.Cores < 1 {
		mc.Cores = 1
	}
	if threads < 1 {
		threads = 1
	}
	v := vm.New(vm.Config{Cores: mc.Cores, Sockets: mc.Sockets, Seed: mc.Seed})
	api := &API{threads: threads, sim: &simEnv{v: v}}
	v.Go("main", 0, func(vt *vm.Thread) {
		main := &Thread{api: api, id: -1, name: "main", vt: vt}
		program(main)
	})
	st, err := v.Run()
	return machine.Stats{
		Makespan:    time.Duration(st.Time),
		Utilization: st.Utilization(),
		Occupancy:   st.Occupancy(),
		Events:      st.Events,
	}, err
}
