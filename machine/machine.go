// Package machine describes the simulated evaluation machine shared by the
// ompss and pthread packages' simulation backends.
//
// The paper evaluates on a 4-socket, 32-core cc-NUMA server. This repository
// reproduces that platform with a deterministic discrete-event simulator
// (internal/vm); package machine is the public face used to configure
// simulated runs and read back their results.
package machine

import "time"

// Config describes the simulated machine for a run.
type Config struct {
	// Cores is the number of virtual cores (default 1).
	Cores int
	// Sockets is the number of NUMA sockets; cores are split into
	// contiguous equal blocks (default 1). The paper's machine is
	// Cores=32, Sockets=4.
	Sockets int
	// Seed makes runs reproducible (scheduler victim selection etc.).
	Seed int64
}

// Paper returns the configuration of the paper's evaluation platform with
// the given core count enabled (the paper sweeps 1, 8, 16, 24, 32).
func Paper(cores int) Config {
	sockets := (cores + 7) / 8
	if sockets < 1 {
		sockets = 1
	}
	return Config{Cores: cores, Sockets: sockets, Seed: 1}
}

// Stats reports the outcome of one simulated run.
type Stats struct {
	// Makespan is the virtual wall-clock time of the run.
	Makespan time.Duration
	// Utilization is the fraction of core-time spent on useful work.
	Utilization float64
	// Occupancy is the fraction of core-time during which cores were held
	// (useful work plus busy-waiting). Occupancy > Utilization quantifies
	// the paper's §5 remark about polling runtimes keeping cores loaded
	// even without work.
	Occupancy float64
	// Events is the number of discrete events processed (a determinism
	// fingerprint).
	Events uint64
	// Tasks is the number of tasks executed (0 for pthread runs).
	Tasks uint64
}
