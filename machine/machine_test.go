package machine

import "testing"

func TestPaperConfig(t *testing.T) {
	cases := []struct{ cores, sockets int }{
		{1, 1}, {8, 1}, {16, 2}, {24, 3}, {32, 4},
	}
	for _, c := range cases {
		mc := Paper(c.cores)
		if mc.Cores != c.cores || mc.Sockets != c.sockets {
			t.Errorf("Paper(%d) = %+v, want %d sockets", c.cores, mc, c.sockets)
		}
	}
	if Paper(0).Sockets < 1 {
		t.Fatal("degenerate core count must keep one socket")
	}
}
