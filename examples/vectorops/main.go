// Vectorops: array-section dependences and taskloop — the OmpSs features
// beyond the paper's Listing 1, shown on a blocked vector pipeline.
//
// Run with: go run ./examples/vectorops
//
// A three-stage computation over one array (fill → scale blocks → prefix
// combine) annotated purely with InRegion/OutRegion sections: the runtime
// discovers that disjoint blocks parallelize and overlapping stages chain,
// with no manual per-block keys. A commutative histogram accumulation runs
// on the side: order-free, mutually exclusive, still ordered against the
// final reader.
package main

import (
	"fmt"
	"time"

	"ompssgo/machine"
	"ompssgo/ompss"
)

const (
	n  = 1 << 14
	bs = 1 << 10
)

func main() {
	rt := ompss.New(ompss.Workers(4))
	data := make([]float64, n)
	hist := make([]int, 8)
	base := &data[0]

	// Each block section is touched by three stages: register one region
	// handle per block (plus the histogram key) and submit through them.
	// Raw InRegion/OutRegion clauses on the same base still interoperate —
	// stage 3's overlap reads below use them directly.
	blockD := make([]*ompss.Datum, n/bs)
	for b := range blockD {
		blockD[b] = rt.RegisterRegion(base, int64(b*bs), int64((b+1)*bs))
	}
	histD := rt.Register(&hist[0])

	// Stage 1: taskloop fill, one section write per chunk.
	rt.TaskLoop(n, bs, func(_ *ompss.TC, lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = float64(i % 97)
		}
	})
	// TaskLoop tasks above carry no clauses (chunks are independent);
	// stage 2 must wait for them, so use an explicit barrier here.
	rt.Taskwait()

	// Stage 2: per-block scale, declared through the region handles.
	for b := 0; b < n/bs; b++ {
		lo, hi := int64(b*bs), int64((b+1)*bs)
		rt.Task(func(*ompss.TC) {
			for i := lo; i < hi; i++ {
				data[i] *= 1.5
			}
		}, ompss.InOut(blockD[b]))
	}

	// Stage 3: each block adds its left neighbour's last element — the
	// one-element overlap chains blocks left to right while stage 2 of
	// later blocks still overlaps stage 3 of earlier ones.
	for b := 0; b < n/bs; b++ {
		lo, hi := int64(b*bs), int64((b+1)*bs)
		rlo := lo - 1
		if rlo < 0 {
			rlo = 0
		}
		rt.Task(func(*ompss.TC) {
			var left float64
			if lo > 0 {
				left = data[lo-1]
			}
			for i := lo; i < hi; i++ {
				data[i] += left
			}
		}, ompss.InRegion(base, rlo, lo+1), ompss.InOut(blockD[b]))
	}

	// Side channel: commutative histogram updates (order-free, mutually
	// exclusive) over the final blocks.
	for b := 0; b < n/bs; b++ {
		lo, hi := int64(b*bs), int64((b+1)*bs)
		rt.Task(func(*ompss.TC) {
			for i := lo; i < hi; i++ {
				hist[int(data[i])%len(hist)]++
			}
		}, ompss.In(blockD[b]), ompss.Commutative(histD))
	}

	total := new(int)
	rt.Task(func(*ompss.TC) {
		for _, v := range hist {
			*total += v
		}
	}, ompss.In(histD), ompss.Out(total))
	rt.Taskwait()
	st := rt.Stats()
	rt.Shutdown()

	fmt.Printf("pipeline over %d elements: %d tasks, %d dependence edges\n",
		n, st.Graph.Finished, st.Graph.Edges)
	fmt.Printf("histogram total = %d (want %d), data[last] = %.1f\n", *total, n, data[n-1])

	// The same dataflow on the simulated 16-core machine.
	stats, err := ompss.RunSim(machine.Paper(16), func(rt *ompss.Runtime) {
		d2 := make([]float64, n)
		b2 := &d2[0]
		for b := 0; b < n/bs; b++ {
			lo, hi := int64(b*bs), int64((b+1)*bs)
			rt.Task(func(*ompss.TC) {
				for i := lo; i < hi; i++ {
					d2[i] = float64(i) * 1.5
				}
			}, ompss.OutRegion(b2, lo, hi), ompss.Cost(200*time.Microsecond))
		}
		rt.Taskwait()
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("sim 16 cores: %v makespan, %.0f%% utilization\n",
		stats.Makespan, stats.Utilization*100)
}
