// Raytrace: the c-ray kernel through the public OmpSs API, writing a PPM.
//
// Run with: go run ./examples/raytrace -o scene.ppm
//
// One task renders each block of rows; blocks near sphere projections cost
// more, and the runtime's queues balance them dynamically — the effect the
// paper's Table 1 credits for c-ray's OmpSs edge at high core counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ompssgo/internal/blocks"
	"ompssgo/internal/img"
	"ompssgo/internal/kernels/cray"
	"ompssgo/ompss"
)

func main() {
	var (
		out     = flag.String("o", "scene.ppm", "output PPM file")
		width   = flag.Int("w", 640, "image width")
		height  = flag.Int("h", 480, "image height")
		spheres = flag.Int("spheres", 24, "scene size")
		workers = flag.Int("workers", 4, "OmpSs threads")
		rows    = flag.Int("rows", 16, "rows per task")
	)
	flag.Parse()

	scene := cray.GenScene(*spheres, 7)
	im := img.NewRGB(*width, *height)

	rt := ompss.New(ompss.Workers(*workers))
	start := time.Now()
	for _, b := range blocks.Ranges(*height, *rows) {
		lo, hi := b[0], b[1]
		rt.Task(func(*ompss.TC) { scene.RenderRows(im, lo, hi) },
			ompss.OutSized(&im.Pix[3*lo**width], int64(3*(hi-lo)**width)),
			ompss.Label(fmt.Sprintf("rows %d-%d", lo, hi)))
	}
	// The context-aware barrier reports task failures as an error instead
	// of unwinding a worker.
	if err := rt.TaskwaitCtx(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "raytrace: render failed: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	st := rt.Stats()
	rt.Shutdown()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "raytrace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := im.WritePPM(f); err != nil {
		fmt.Fprintf(os.Stderr, "raytrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("rendered %dx%d (%d spheres) with %d tasks on %d workers in %v -> %s\n",
		*width, *height, *spheres, st.Graph.Finished, *workers, elapsed, *out)
}
