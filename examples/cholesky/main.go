// Cholesky: blocked dense factorization as a task dataflow — the classic
// OmpSs demonstration that dependence clauses express more than pipelines:
// the runtime extracts the full DAG parallelism of the right-looking
// algorithm (trsm panels in parallel, trailing updates overlapping later
// panels) from nothing but In/Out/InOut annotations.
//
// Run with: go run ./examples/cholesky -nb 8 -bs 32
//
// The example factors natively, verifies L·Lᵀ against the original matrix,
// and then sweeps the simulated machine to show the DAG's scaling.
package main

import (
	"flag"
	"fmt"
	"time"

	"ompssgo/internal/kernels/linalg"
	"ompssgo/machine"
	"ompssgo/ompss"
)

func main() {
	var (
		nb      = flag.Int("nb", 8, "blocks per dimension")
		bs      = flag.Int("bs", 32, "block size")
		workers = flag.Int("workers", 4, "native OmpSs threads")
	)
	flag.Parse()

	// Native factorization + verification.
	m := linalg.NewMatrix(*nb, *bs)
	m.GenSPD(42)
	orig := linalg.NewMatrix(*nb, *bs)
	orig.GenSPD(42)

	rt := ompss.New(ompss.Workers(*workers))
	start := time.Now()
	factorize(rt, m, *nb, *bs)
	elapsed := time.Since(start)
	st := rt.Stats()
	rt.Shutdown()

	res := linalg.ResidualL(m, orig)
	fmt.Printf("factorized %d×%d (%d tasks, %d dependence edges) in %v; residual %.2e\n",
		*nb**bs, *nb**bs, st.Graph.Finished, st.Graph.Edges, elapsed, res)
	if res > 1e-8 {
		panic("verification failed")
	}

	// Scaling on the simulated machine (every block kernel re-executes for
	// real inside the simulation, so the result stays verified).
	for _, cores := range []int{1, 4, 16, 32} {
		mm := linalg.NewMatrix(*nb, *bs)
		mm.GenSPD(42)
		stats, err := ompss.RunSim(machine.Paper(cores), func(rt *ompss.Runtime) {
			factorize(rt, mm, *nb, *bs)
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("sim %2d cores: makespan %10v  utilization %5.1f%%\n",
			cores, stats.Makespan, stats.Utilization*100)
	}
}

// factorize spawns the right-looking blocked Cholesky task graph. Every
// matrix block is touched by O(nb) tasks, so the blocks are registered as
// data handles once and all clauses go through them — the handle-API
// equivalent of the compiler-resolved clause expressions of the paper.
func factorize(rt *ompss.Runtime, m *linalg.Matrix, nb, bs int) {
	cost := ompss.Cost(linalg.BlockOpCost(bs))
	blk := make([][]*ompss.Datum, nb)
	for i := range blk {
		blk[i] = make([]*ompss.Datum, nb)
		for j := range blk[i] {
			blk[i][j] = rt.Register(m.Blocks[i][j])
		}
	}
	for k := 0; k < nb; k++ {
		k := k
		rt.Task(func(*ompss.TC) { linalg.POTRF(m.Blocks[k][k]) },
			ompss.InOut(blk[k][k]), cost, ompss.Label("potrf"))
		for i := k + 1; i < nb; i++ {
			i := i
			rt.Task(func(*ompss.TC) { linalg.TRSM(m.Blocks[k][k], m.Blocks[i][k]) },
				ompss.In(blk[k][k]), ompss.InOut(blk[i][k]), cost, ompss.Label("trsm"))
		}
		for i := k + 1; i < nb; i++ {
			i := i
			rt.Task(func(*ompss.TC) { linalg.SYRK(m.Blocks[i][k], m.Blocks[i][i]) },
				ompss.In(blk[i][k]), ompss.InOut(blk[i][i]), cost, ompss.Label("syrk"))
			for j := k + 1; j < i; j++ {
				j := j
				rt.Task(func(*ompss.TC) { linalg.GEMM(m.Blocks[i][k], m.Blocks[j][k], m.Blocks[i][j]) },
					ompss.In(blk[i][k]), ompss.In(blk[j][k]),
					ompss.InOut(blk[i][j]), cost, ompss.Label("gemm"))
			}
		}
	}
	rt.Taskwait()
}
