// Kmeans: iterative clustering with a task barrier per iteration — the
// structure the paper's kmeans benchmark uses, shown on the public API.
//
// Run with: go run ./examples/kmeans -n 20000 -k 8
//
// Each iteration spawns one assignment task per point chunk plus a
// reduction task that depends on every partial; Taskwait is the iteration
// barrier. Chunk boundaries are fixed, so results are bit-identical to the
// sequential run regardless of worker count.
package main

import (
	"flag"
	"fmt"
	"time"

	"ompssgo/internal/blocks"
	"ompssgo/internal/kernels/kmeans"
	"ompssgo/internal/media"
	"ompssgo/ompss"
)

func main() {
	var (
		n       = flag.Int("n", 20000, "points")
		dim     = flag.Int("dim", 8, "dimensions")
		k       = flag.Int("k", 8, "clusters")
		chunk   = flag.Int("chunk", 512, "points per task")
		workers = flag.Int("workers", 4, "OmpSs threads")
		maxIter = flag.Int("iters", 50, "max iterations")
	)
	flag.Parse()

	pts, _ := media.Points(*n, *dim, *k, 11)
	prob := &kmeans.Problem{Points: pts, N: *n, Dim: *dim, K: *k}

	centroids := prob.InitCentroids()
	assign := make([]int, *n)
	for i := range assign {
		assign[i] = -1
	}
	ranges := blocks.Ranges(*n, *chunk)
	partials := make([]*kmeans.Partial, len(ranges))
	for i := range partials {
		partials[i] = prob.NewPartial()
	}
	merged := prob.NewPartial()

	rt := ompss.New(ompss.Workers(*workers))
	defer rt.Shutdown()

	// The iteration loop reuses the same keys every round: register the
	// centroids and each partial once, and submit through the handles.
	cent := rt.Register(&centroids[0])
	partD := make([]*ompss.Datum, len(partials))
	for i := range partials {
		partD[i] = rt.Register(partials[i])
	}

	start := time.Now()
	iters, moved := 0, -1
	for it := 0; it < *maxIter; it++ {
		iters++
		for c := range ranges {
			c := c
			r := ranges[c]
			rt.Task(func(*ompss.TC) {
				partials[c].Reset()
				prob.AssignRange(centroids, assign, partials[c], r[0], r[1])
			}, ompss.In(cent), ompss.Out(partD[c]), ompss.Label("assign"))
		}
		deps := []ompss.Clause{ompss.InOut(cent), ompss.Label("reduce")}
		for _, pa := range partD {
			deps = append(deps, ompss.In(pa))
		}
		rt.Task(func(*ompss.TC) {
			merged.Reset()
			for _, pa := range partials {
				merged.Merge(pa)
			}
			moved = prob.UpdateCentroids(centroids, merged)
		}, deps...)
		rt.Taskwait()
		if moved == 0 {
			break
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("clustered %d points (dim %d) into %d clusters in %d iterations, %v\n",
		*n, *dim, *k, iters, elapsed)
	fmt.Printf("objective (total squared distance): %.1f\n", prob.Cost(centroids, assign))
	counts := make([]int, *k)
	for _, a := range assign {
		counts[a]++
	}
	fmt.Printf("cluster sizes: %v\n", counts)
}
