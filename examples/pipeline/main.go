// Pipeline: the paper's Listing 1 — the pipelined H.264 main decoder loop —
// expressed with this library against the real toy-codec substrate.
//
// Run with: go run ./examples/pipeline
//
// Each loop iteration spawns one task per pipeline stage (read, parse,
// entropy-decode, reconstruct, output). Stage contexts annotated inout
// serialize each stage across iterations; a circular buffer of N frames
// renames the per-iteration data, eliminating the WAR/WAW hazards that
// would otherwise serialize everything (OmpSs has no automatic renaming —
// the paper calls this manual renaming out explicitly); `taskwait on` the
// read context gates the loop, and the Picture Info Buffer / Decoded
// Picture Buffer are recycled inside named criticals because their
// availability cannot be expressed as task dependences.
package main

import (
	"context"
	"fmt"
	"time"

	"ompssgo/internal/h264"
	"ompssgo/internal/media"
	"ompssgo/machine"
	"ompssgo/ompss"
)

const N = 3 // circular buffer depth (Listing 1's N)

func main() {
	// Synthesize and encode a short sequence with the repo's codec.
	p := h264.Params{W: 96, H: 64, QP: 26, GOP: 4, SearchRange: 4}
	video := media.Video(10, p.W, p.H, 42)
	bs, err := h264.EncodeSequence(p, video)
	if err != nil {
		panic(err)
	}

	tr := ompss.NewTracer()
	st, err := ompss.RunSim(machine.Paper(8), func(rt *ompss.Runtime) {
		decode(rt, p, bs)
	}, ompss.Trace(tr))
	if err != nil {
		panic(err)
	}
	sum := tr.Summary()
	fmt.Printf("pipeline decoded on simulated 8 cores: makespan %v, %d tasks, max concurrency %d\n",
		st.Makespan, sum.Tasks, sum.MaxConcurrent)
}

// decode is the Listing 1 loop. Compare with the paper:
//
//	while(!EOF){
//	  #pragma omp task inout(*rc) output(*frm)
//	  read_frame_task(rc, &frm[k%N]);
//	  ...
//	  #pragma omp taskwait on (*rc)
//	}
func decode(rt *ompss.Runtime, p h264.Params, bs []byte) {
	_, nframes, off, err := h264.ParseStreamHeader(bs)
	if err != nil {
		panic(err)
	}
	sr := h264.NewStreamReader(bs, off)

	// Stage contexts (Listing 1's rc, nc, ec, oc — plus dc for the
	// reconstruction stage; the paper's listing reuses *rc there, which
	// would chain the read stage behind reconstruction and stall the
	// pipeline, so we give reconstruction its own context). The contexts
	// and circular-buffer slots recur every iteration, so they are
	// registered once as data handles — the pre-resolved analogue of the
	// pragma's clause expressions.
	rc := rt.Register(new(int))
	nc := rt.Register(new(int))
	ec := rt.Register(new(int))
	dc := rt.Register(new(int))
	oc := rt.Register(new(int))

	// Circular buffers: frames, headers, entropy-decode buffers, pictures.
	frm := make([][]byte, N)
	hdr := make([]h264.Header, N)
	br := make([]*h264.BitReader, N)
	eds := make([]*h264.FrameData, N)
	pics := make([]*h264.Picture, N)
	frmD := make([]*ompss.Datum, N)
	hdrD := make([]*ompss.Datum, N)
	edsD := make([]*ompss.Datum, N)
	picD := make([]*ompss.Datum, N)
	for i := range eds {
		eds[i] = h264.NewFrameData(p)
		frmD[i] = rt.Register(&frm[i])
		hdrD[i] = rt.Register(&hdr[i])
		edsD[i] = rt.Register(eds[i])
		picD[i] = rt.Register(&pics[i])
	}
	pib := h264.NewPIB(2*N + 2)
	dpb := h264.NewDPB(N+2, p)
	pis := make([]*h264.PicInfo, N)
	var prevPic *h264.Picture
	decoded := 0

	for k := 0; k < nframes; k++ {
		k := k
		s := k % N
		prev := (k - 1 + N) % N

		// The read and decode stages can fail on a corrupt stream: Go makes
		// the error the task's outcome, skipping the dependent stages and
		// surfacing at the final TaskwaitCtx instead of panicking a worker.
		rt.Go(func(tc *ompss.TC) error {
			payload, ok, err := sr.Next()
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("stream ended early at frame %d", k)
			}
			frm[s] = payload
			tc.Compute(h264.ReadFrameCost(len(payload)))
			return nil
		}, ompss.InOut(rc), ompss.Out(frmD[s]), ompss.Label("read"))

		rt.Go(func(tc *ompss.TC) error {
			h, r, err := h264.DecodeFrameHeader(frm[s])
			if err != nil {
				return err
			}
			hdr[s], br[s] = h, r
			tc.Critical("pib", func() { pis[s] = pib.Fetch() })
			return nil
		}, ompss.InOut(nc), ompss.In(frmD[s]), ompss.Out(hdrD[s]),
			ompss.Cost(h264.ParseCost()), ompss.Label("parse"))

		rt.Go(func(*ompss.TC) error {
			return h264.EntropyDecodeFrame(p, br[s], hdr[s], eds[s])
		}, ompss.InOut(ec), ompss.In(hdrD[s]), ompss.Out(edsD[s]),
			ompss.Cost(h264.EDMBCost()*time.Duration(p.MBW()*p.MBH())), ompss.Label("entropy"))

		rt.Task(func(tc *ompss.TC) {
			tc.Critical("dpb", func() { pics[s] = dpb.Fetch(k, 2) })
			ref := pics[s]
			if k > 0 {
				ref = pics[prev]
			}
			h264.ReconstructFrame(p, pics[s].Img, ref.Img, eds[s])
		}, ompss.InOut(dc), ompss.In(edsD[s]), ompss.Out(picD[s]),
			ompss.Cost(h264.ReconMBCost()*time.Duration(p.MBW()*p.MBH())), ompss.Label("reconstruct"))

		rt.Task(func(tc *ompss.TC) {
			decoded++
			tc.Critical("dpb", func() {
				dpb.Release(pics[s]) // output hold
				if prevPic != nil {
					dpb.Release(prevPic) // reference hold of the previous frame
				}
				prevPic = pics[s]
			})
			tc.Critical("pib", func() { pib.Release(pis[s]) })
		}, ompss.InOut(oc), ompss.In(picD[s]),
			ompss.Cost(h264.OutputFrameCost(p.W*p.H)), ompss.Label("output"))

		// Listing 1's loop gate.
		rt.TaskwaitOn(rc)
	}
	if err := rt.TaskwaitCtx(context.Background()); err != nil {
		panic(err)
	}
	if prevPic != nil {
		dpb.Release(prevPic)
	}
	fmt.Printf("decoded %d frames through the Listing 1 pipeline\n", decoded)
}
