// Pipeline: the paper's Listing 1 — the pipelined H.264 main decoder loop —
// expressed with this library against the real toy-codec substrate.
//
// Run with: go run ./examples/pipeline
//
// Each loop iteration spawns one task per pipeline stage (read, parse,
// entropy-decode, reconstruct, output). Stage contexts annotated inout
// serialize each stage across iterations; a circular buffer of N frames
// renames the per-iteration data, eliminating the WAR/WAW hazards that
// would otherwise serialize everything (OmpSs has no automatic renaming —
// the paper calls this manual renaming out explicitly); `taskwait on` the
// read context gates the loop, and the Picture Info Buffer / Decoded
// Picture Buffer are recycled inside named criticals because their
// availability cannot be expressed as task dependences.
package main

import (
	"fmt"
	"time"

	"ompssgo/internal/h264"
	"ompssgo/internal/media"
	"ompssgo/machine"
	"ompssgo/ompss"
)

const N = 3 // circular buffer depth (Listing 1's N)

func main() {
	// Synthesize and encode a short sequence with the repo's codec.
	p := h264.Params{W: 96, H: 64, QP: 26, GOP: 4, SearchRange: 4}
	video := media.Video(10, p.W, p.H, 42)
	bs, err := h264.EncodeSequence(p, video)
	if err != nil {
		panic(err)
	}

	tr := ompss.NewTracer()
	st, err := ompss.RunSim(machine.Paper(8), func(rt *ompss.Runtime) {
		decode(rt, p, bs)
	}, ompss.Trace(tr))
	if err != nil {
		panic(err)
	}
	sum := tr.Summary()
	fmt.Printf("pipeline decoded on simulated 8 cores: makespan %v, %d tasks, max concurrency %d\n",
		st.Makespan, sum.Tasks, sum.MaxConcurrent)
}

// decode is the Listing 1 loop. Compare with the paper:
//
//	while(!EOF){
//	  #pragma omp task inout(*rc) output(*frm)
//	  read_frame_task(rc, &frm[k%N]);
//	  ...
//	  #pragma omp taskwait on (*rc)
//	}
func decode(rt *ompss.Runtime, p h264.Params, bs []byte) {
	_, nframes, off, err := h264.ParseStreamHeader(bs)
	if err != nil {
		panic(err)
	}
	sr := h264.NewStreamReader(bs, off)

	// Stage contexts (Listing 1's rc, nc, ec, oc — plus dc for the
	// reconstruction stage; the paper's listing reuses *rc there, which
	// would chain the read stage behind reconstruction and stall the
	// pipeline, so we give reconstruction its own context).
	rc, nc, ec, dc, oc := new(int), new(int), new(int), new(int), new(int)

	// Circular buffers: frames, headers, entropy-decode buffers, pictures.
	frm := make([][]byte, N)
	hdr := make([]h264.Header, N)
	br := make([]*h264.BitReader, N)
	eds := make([]*h264.FrameData, N)
	pics := make([]*h264.Picture, N)
	for i := range eds {
		eds[i] = h264.NewFrameData(p)
	}
	pib := h264.NewPIB(2*N + 2)
	dpb := h264.NewDPB(N+2, p)
	pis := make([]*h264.PicInfo, N)
	var prevPic *h264.Picture
	decoded := 0

	for k := 0; k < nframes; k++ {
		k := k
		s := k % N
		prev := (k - 1 + N) % N

		rt.Task(func(tc *ompss.TC) {
			payload, ok, err := sr.Next()
			if err != nil || !ok {
				panic(err)
			}
			frm[s] = payload
			tc.Compute(h264.ReadFrameCost(len(payload)))
		}, ompss.InOut(rc), ompss.Out(&frm[s]), ompss.Label("read"))

		rt.Task(func(tc *ompss.TC) {
			h, r, err := h264.DecodeFrameHeader(frm[s])
			if err != nil {
				panic(err)
			}
			hdr[s], br[s] = h, r
			tc.Critical("pib", func() { pis[s] = pib.Fetch() })
		}, ompss.InOut(nc), ompss.In(&frm[s]), ompss.Out(&hdr[s]),
			ompss.Cost(h264.ParseCost()), ompss.Label("parse"))

		rt.Task(func(*ompss.TC) {
			if err := h264.EntropyDecodeFrame(p, br[s], hdr[s], eds[s]); err != nil {
				panic(err)
			}
		}, ompss.InOut(ec), ompss.In(&hdr[s]), ompss.Out(eds[s]),
			ompss.Cost(h264.EDMBCost()*time.Duration(p.MBW()*p.MBH())), ompss.Label("entropy"))

		rt.Task(func(tc *ompss.TC) {
			tc.Critical("dpb", func() { pics[s] = dpb.Fetch(k, 2) })
			ref := pics[s]
			if k > 0 {
				ref = pics[prev]
			}
			h264.ReconstructFrame(p, pics[s].Img, ref.Img, eds[s])
		}, ompss.InOut(dc), ompss.In(eds[s]), ompss.Out(&pics[s]),
			ompss.Cost(h264.ReconMBCost()*time.Duration(p.MBW()*p.MBH())), ompss.Label("reconstruct"))

		rt.Task(func(tc *ompss.TC) {
			decoded++
			tc.Critical("dpb", func() {
				dpb.Release(pics[s]) // output hold
				if prevPic != nil {
					dpb.Release(prevPic) // reference hold of the previous frame
				}
				prevPic = pics[s]
			})
			tc.Critical("pib", func() { pib.Release(pis[s]) })
		}, ompss.InOut(oc), ompss.In(&pics[s]),
			ompss.Cost(h264.OutputFrameCost(p.W*p.H)), ompss.Label("output"))

		// Listing 1's loop gate.
		rt.TaskwaitOn(rc)
	}
	rt.Taskwait()
	if prevPic != nil {
		dpb.Release(prevPic)
	}
	fmt.Printf("decoded %d frames through the Listing 1 pipeline\n", decoded)
}
