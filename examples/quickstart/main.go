// Quickstart: the OmpSs programming model in one file.
//
// Run with: go run ./examples/quickstart
//
// It shows the three core ideas of the model evaluated in the paper:
// declaring tasks with dataflow clauses instead of synchronizing by hand,
// letting the runtime discover parallelism from the clauses, and using the
// simulated 32-core machine to observe scaling without owning the hardware.
package main

import (
	"fmt"
	"time"

	"ompssgo/machine"
	"ompssgo/ompss"
)

func main() {
	// --- Native execution on goroutine workers. -------------------------
	rt := ompss.New(ompss.Workers(4))

	// Tasks declare how they touch data; the runtime orders them. These
	// three form a chain through x, while the pair on a/b is independent.
	x, y := new(int), new(int)
	a, b := new(int), new(int)
	rt.Task(func(*ompss.TC) { *x = 40 }, ompss.Out(x), ompss.Label("produce"))
	rt.Task(func(*ompss.TC) { *x += 2 }, ompss.InOut(x), ompss.Label("update"))
	rt.Task(func(*ompss.TC) { *y = *x }, ompss.In(x), ompss.Out(y), ompss.Label("consume"))
	rt.Task(func(*ompss.TC) { *a = 1 }, ompss.Out(a))
	rt.Task(func(*ompss.TC) { *b = 2 }, ompss.Out(b))

	// taskwait is the task barrier: it also lets the calling thread help
	// execute ready tasks, as the OmpSs master thread does.
	rt.Taskwait()
	fmt.Printf("native: y = %d, a+b = %d\n", *y, *a+*b)

	// taskwait on(...) waits only for the last writer of one datum — the
	// idiom Listing 1 uses to gate a pipelined loop on its read stage.
	done := new(int)
	rt.Task(func(*ompss.TC) { time.Sleep(time.Millisecond); *done = 1 }, ompss.Out(done))
	rt.TaskwaitOn(done)
	fmt.Printf("native: taskwait on saw done = %d\n", *done)
	rt.Shutdown()

	// --- The same program on the simulated 32-core cc-NUMA machine. -----
	// Bodies still execute for real; Cost clauses drive virtual time.
	for _, cores := range []int{1, 8, 32} {
		st, err := ompss.RunSim(machine.Paper(cores), func(rt *ompss.Runtime) {
			results := make([]int, 64)
			for i := range results {
				i := i
				rt.Task(func(*ompss.TC) { results[i] = i * i },
					ompss.OutSized(&results[i], 8),
					ompss.Cost(500*time.Microsecond))
			}
			rt.Taskwait()
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("sim %2d cores: makespan %8.3f ms, utilization %4.1f%%, %d tasks\n",
			cores, float64(st.Makespan)/1e6, st.Utilization*100, st.Tasks)
	}
}
