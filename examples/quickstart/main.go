// Quickstart: the OmpSs programming model in one file, through the
// first-class handle API.
//
// Run with: go run ./examples/quickstart
//
// It shows the core ideas of the model evaluated in the paper — declaring
// tasks with dataflow clauses instead of synchronizing by hand, and letting
// the runtime discover parallelism from the clauses — plus the Go-native
// surface this library adds on top: registered data handles (cheap,
// pre-resolved dependence keys), error-returning task futures, and
// context-aware waits.
package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ompssgo/machine"
	"ompssgo/ompss"
)

func main() {
	// --- Native execution on goroutine workers. -------------------------
	rt := ompss.New(ompss.Workers(4))

	// Register the data the tasks will exchange. A *Datum is a dependence
	// key whose shard and record were resolved once, up front — the
	// library analogue of the compiler-resolved clause expressions in
	//
	//	#pragma omp task input(*x) output(*y)
	//
	// (Raw pointers still work anywhere a key is expected; handles are
	// the fast path, not a requirement.)
	x, y := new(int), new(int)
	dx, dy := rt.Register(x), rt.Register(y)

	// Tasks declare how they touch data; the runtime orders them. These
	// three form a chain through x.
	rt.Task(func(*ompss.TC) { *x = 40 }, ompss.Out(dx), ompss.Label("produce"))
	rt.Task(func(*ompss.TC) { *x += 2 }, ompss.InOut(dx), ompss.Label("update"))
	consume := rt.Task(func(*ompss.TC) { *y = *x }, ompss.In(dx), ompss.Out(dy),
		ompss.Label("consume"))

	// Taskwait is the task barrier: the calling thread helps execute ready
	// tasks while waiting, as the OmpSs master thread does. Every spawn
	// also returned a *Handle — a future with Done and Err.
	rt.Taskwait()
	fmt.Printf("native: y = %d (consume err = %v)\n", *y, consume.Err())

	// Error-returning tasks: Go makes the body's error the task outcome.
	// Under the default SkipDependents policy a failure skips the tasks
	// depending on it (each wrapping the root cause), and the first
	// failure of the batch surfaces at the context-aware barrier.
	bad := rt.Go(func(*ompss.TC) error { return fmt.Errorf("no input frame") },
		ompss.Out(dx), ompss.Label("bad-producer"))
	dep := rt.Task(func(*ompss.TC) { *y = *x }, ompss.In(dx), ompss.Label("stranded"))
	err := rt.TaskwaitCtx(context.Background())
	fmt.Printf("native: barrier err = %v\n", err)
	fmt.Printf("native: bad.Err = %v; dep skipped = %v\n",
		bad.Err(), errors.Is(dep.Err(), ompss.ErrSkipped))

	// taskwait on(...) waits only for the last writer of one datum — the
	// idiom Listing 1 uses to gate a pipelined loop on its read stage.
	done := rt.Register(new(int))
	rt.Task(func(*ompss.TC) { time.Sleep(time.Millisecond) }, ompss.Out(done))
	rt.TaskwaitOn(done)
	rt.Shutdown()

	// --- The same model on the simulated 32-core cc-NUMA machine. -------
	// Bodies still execute for real; Cost clauses drive virtual time.
	// RunSimCtx is the context-aware variant: cancelling the context
	// drains the simulated graph by skipping not-yet-started tasks.
	for _, cores := range []int{1, 8, 32} {
		st, err := ompss.RunSimCtx(context.Background(), machine.Paper(cores),
			func(rt *ompss.Runtime) {
				results := make([]int, 64)
				for i := range results {
					i := i
					rt.Task(func(*ompss.TC) { results[i] = i * i },
						ompss.OutSized(&results[i], 8),
						ompss.Cost(500*time.Microsecond))
				}
				rt.Taskwait()
			})
		if err != nil {
			panic(err)
		}
		fmt.Printf("sim %2d cores: makespan %8.3f ms, utilization %4.1f%%, %d tasks\n",
			cores, float64(st.Makespan)/1e6, st.Utilization*100, st.Tasks)
	}
}
