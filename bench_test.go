// Repository-level benchmarks: one testing.B benchmark per evaluation
// artifact of the paper.
//
//   - BenchmarkTable1/<bench>/<P>cores — regenerates one cell of Table 1 on
//     the simulated machine (reduced workloads; the full-scale table comes
//     from `go run ./cmd/ompss-bench -table1`). Reported metrics:
//     speedup-factor (Pthreads time / OmpSs time), pthreads-ms, ompss-ms.
//   - BenchmarkBarrierMechanism — the §4 rgbcmy polling-vs-blocking story.
//   - BenchmarkLocalityMechanism — the §4 ray-rot locality story.
//   - BenchmarkGranularityMechanism — the §4 h264dec granularity story.
//   - BenchmarkOccupancy — the §5 polling-occupancy observation.
//   - BenchmarkNative* — native (goroutine) runtime primitive costs.
package ompssgo_test

import (
	"fmt"
	"testing"
	"time"

	"ompssgo/internal/bench"
	"ompssgo/internal/suite"
	sh264dec "ompssgo/internal/suite/h264dec"
	srayrot "ompssgo/internal/suite/rayrot"
	srgbcmy "ompssgo/internal/suite/rgbcmy"
	"ompssgo/machine"
	"ompssgo/ompss"
	"ompssgo/pthread"
)

// BenchmarkTable1 regenerates every cell of the paper's Table 1 at reduced
// scale: 10 benchmarks × {8, 32} cores.
func BenchmarkTable1(b *testing.B) {
	for _, name := range suite.Names() {
		in, err := suite.New(name, suite.Small)
		if err != nil {
			b.Fatal(err)
		}
		for _, cores := range []int{8, 32} {
			b.Run(fmt.Sprintf("%s/%dcores", name, cores), func(b *testing.B) {
				var last bench.Cell
				for i := 0; i < b.N; i++ {
					cell, err := bench.MeasureCell(in, cores)
					if err != nil {
						b.Fatal(err)
					}
					last = cell
				}
				b.ReportMetric(last.Factor(), "speedup-factor")
				b.ReportMetric(float64(last.Pthreads)/1e6, "pthreads-ms")
				b.ReportMetric(float64(last.OmpSs)/1e6, "ompss-ms")
			})
		}
	}
}

// BenchmarkBarrierMechanism isolates the rgbcmy wait-mode effect at 16
// cores: the polling taskwait versus OmpSs forced into blocking waits.
func BenchmarkBarrierMechanism(b *testing.B) {
	in := srgbcmy.New(srgbcmy.Small())
	for _, mode := range []ompss.WaitMode{ompss.Polling, ompss.Blocking} {
		b.Run(mode.String(), func(b *testing.B) {
			var span time.Duration
			for i := 0; i < b.N; i++ {
				st, err := ompss.RunSim(machine.Paper(16),
					func(rt *ompss.Runtime) { in.RunOmpSs(rt) }, ompss.Wait(mode))
				if err != nil {
					b.Fatal(err)
				}
				span = st.Makespan
			}
			b.ReportMetric(float64(span)/1e6, "virtual-ms")
		})
	}
}

// BenchmarkLocalityMechanism isolates the ray-rot locality-scheduling
// effect at 16 cores.
func BenchmarkLocalityMechanism(b *testing.B) {
	in := srayrot.New(srayrot.Small())
	for _, loc := range []bool{true, false} {
		b.Run(fmt.Sprintf("locality=%v", loc), func(b *testing.B) {
			var span time.Duration
			for i := 0; i < b.N; i++ {
				st, err := ompss.RunSim(machine.Paper(16),
					func(rt *ompss.Runtime) { in.RunOmpSs(rt) }, ompss.Locality(loc))
				if err != nil {
					b.Fatal(err)
				}
				span = st.Makespan
			}
			b.ReportMetric(float64(span)/1e6, "virtual-ms")
		})
	}
}

// BenchmarkGranularityMechanism sweeps h264dec reconstruction-task
// granularity at 32 cores — the paper's §4 grouping dilemma.
func BenchmarkGranularityMechanism(b *testing.B) {
	base := sh264dec.Small()
	for _, g := range []int{1, 2, 4} {
		wl := base
		wl.GroupRows = g
		in := sh264dec.New(wl)
		b.Run(fmt.Sprintf("grouprows=%d", g), func(b *testing.B) {
			var span time.Duration
			for i := 0; i < b.N; i++ {
				st, err := ompss.RunSim(machine.Paper(32),
					func(rt *ompss.Runtime) { in.RunOmpSs(rt) })
				if err != nil {
					b.Fatal(err)
				}
				span = st.Makespan
			}
			b.ReportMetric(float64(span)/1e6, "virtual-ms")
		})
	}
}

// BenchmarkOccupancy measures the §5 observation: polling keeps cores
// occupied beyond their useful utilization.
func BenchmarkOccupancy(b *testing.B) {
	in := srgbcmy.New(srgbcmy.Small())
	var st machine.Stats
	for i := 0; i < b.N; i++ {
		var err error
		st, err = ompss.RunSim(machine.Paper(16), func(rt *ompss.Runtime) { in.RunOmpSs(rt) })
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.Occupancy*100, "occupancy-%")
	b.ReportMetric(st.Utilization*100, "utilization-%")
}

// BenchmarkNativeTaskSpawn measures the native runtime's task creation and
// drain cost for independent tasks.
func BenchmarkNativeTaskSpawn(b *testing.B) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Task(func(*ompss.TC) {})
		if i%1024 == 1023 {
			rt.Taskwait()
		}
	}
	rt.Taskwait()
}

// BenchmarkNativeDependentChain measures dependence tracking along an
// inout chain.
func BenchmarkNativeDependentChain(b *testing.B) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()
	x := new(int)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Task(func(*ompss.TC) { *x++ }, ompss.InOut(x))
		if i%1024 == 1023 {
			rt.Taskwait()
		}
	}
	rt.Taskwait()
	if *x != b.N {
		b.Fatalf("chain lost updates: %d != %d", *x, b.N)
	}
}

// BenchmarkNativeTaskwait measures the empty-graph taskwait fast path.
func BenchmarkNativeTaskwait(b *testing.B) {
	rt := ompss.New(ompss.Workers(2))
	defer rt.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Taskwait()
	}
}

// BenchmarkNativePthreadBarrier measures the native blocking barrier
// round-trip with 4 threads.
func BenchmarkNativePthreadBarrier(b *testing.B) {
	api := pthread.Native(4)
	bar := api.NewBarrier(4)
	b.ResetTimer()
	api.Main().Parallel(func(t *pthread.Thread) {
		for i := 0; i < b.N; i++ {
			t.Barrier(bar)
		}
	})
}

// BenchmarkSimThroughput measures the simulator's event-processing rate
// (real time per simulated task).
func BenchmarkSimThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := ompss.RunSim(machine.Paper(8), func(rt *ompss.Runtime) {
			x := new(int)
			for j := 0; j < 256; j++ {
				rt.Task(func(*ompss.TC) {}, ompss.InOut(x), ompss.Cost(time.Microsecond))
			}
			rt.Taskwait()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
