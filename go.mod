module ompssgo

go 1.22
