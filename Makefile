# Mirrors .github/workflows/ci.yml so contributors run exactly what CI runs.

GO ?= go

.PHONY: all build test race bench bench-contention bench-submit bench-native bench-trend alloc-budget examples lint trace dist-trace serve serve-smoke serve-trend dist dist-tcp dist-race fuzz-frames soak ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

# Race-detector pass over the concurrent executor packages (the CI `race` job).
race:
	$(GO) test -race -shuffle=on ./ompss ./internal/core ./internal/tune ./internal/obs ./internal/obs/metrics ./internal/serve ./internal/dist ./pthread

# Run every benchmark for one iteration so benchmark code cannot rot
# (the CI `bench-smoke` job). For real numbers, raise -benchtime.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Contended-throughput microbenchmark of the native executor, 3 iterations
# per worker count — the before/after scaling gauge for runtime changes.
bench-contention:
	$(GO) test ./internal/bench -bench BenchmarkContendedThroughput -benchtime=3x -run='^$$'

# Submit-path allocation benchmark: registered *Datum handles vs the
# any-key compatibility path (the CI bench-smoke job runs this with
# -benchmem so handle-path regressions show up in the log).
bench-submit:
	$(GO) test ./internal/bench -run='^$$' -bench=BenchmarkSubmit -benchmem -benchtime=300000x

# Allocation regression guard: fails when any submit benchmark exceeds the
# allocs/op ceiling in internal/bench/testdata/alloc_budget.json (the CI
# bench-smoke job runs this).
alloc-budget:
	$(GO) test ./internal/bench -run='^TestSubmitAllocBudget$$' -count=1 -v

# Wall-clock native scheduling harness: runs the suite's small instances on
# real goroutines under policy on/off and writes BENCH_native.json (see
# EXPERIMENTS.md for the recorded trajectory).
bench-native:
	$(GO) run ./cmd/ompss-bench -native -o BENCH_native.json

# Perf-trajectory gate (the CI `bench-trend` job): measure the small
# workloads fresh — including the -tune grain ablation (best static chunk
# vs chunk=Auto) — and compare the policy, rename, and autotune factors
# against the committed small-scale baseline with a ±30% regression-only
# tolerance on each section's mean factor (per-cell outliers are warnings).
bench-trend:
	$(GO) run ./cmd/ompss-bench -native -small -iters 3 -tune -o /tmp/BENCH_native_fresh.json
	$(GO) run ./cmd/ompss-bench -trend -baseline BENCH_native_small.json -candidate /tmp/BENCH_native_fresh.json -tol 0.30

# Profile one suite app with the observability recorder attached: record a
# raw trace, print the analyzer report (parallelism profile, critical path,
# per-worker utilization, steal matrix), and export Chrome trace-event JSON
# — open trace.chrome.json in chrome://tracing or ui.perfetto.dev. The CI
# bench-smoke job runs the same pipeline and uploads the Chrome trace as an
# artifact. Override: make trace TRACE_BENCH=c-ray TRACE_WORKERS=4
TRACE_BENCH ?= h264dec
TRACE_WORKERS ?= 2
trace:
	$(GO) run ./cmd/ompss-trace record -bench $(TRACE_BENCH) -workers $(TRACE_WORKERS) -o trace.raw.json
	$(GO) run ./cmd/ompss-trace analyze trace.raw.json
	$(GO) run ./cmd/ompss-trace export -format chrome -o trace.chrome.json trace.raw.json

# Cross-process trace of a distributed run (the CI dist-smoke job): the
# coordinator and every worker process record their own rings, the worker
# streams ship back over the dispatch connection, and the merge aligns each
# worker's clock before interleaving — one timeline, one track per worker
# incarnation. The merged stream is reconciled against the run's transfer
# accounting before it is written. Override: make dist-trace DIST_TRACE_BENCH=kmeans
DIST_TRACE_BENCH ?= rotate
DIST_TRACE_WORKERS ?= 2
dist-trace:
	$(GO) run ./cmd/ompss-trace record -bench $(DIST_TRACE_BENCH) -dist -dist-workers $(DIST_TRACE_WORKERS) -small -o trace.dist.json
	$(GO) run ./cmd/ompss-trace analyze trace.dist.json
	$(GO) run ./cmd/ompss-trace export -format chrome -o trace.dist.chrome.json trace.dist.json

# Boot the multi-tenant service runtime on :8080 (Ctrl-C to stop). See
# README "Serving requests" for the endpoints and tenant headers.
serve:
	$(GO) run ./cmd/ompss-serve -addr :8080

# Short load burst against the in-process handler (the CI serve-smoke job
# also drives a booted server over real HTTP): concurrent mixed-tenant
# clients with fault injection; exits nonzero on zero 2xx responses or any
# cross-session isolation violation, and writes the latency report that
# EXPERIMENTS.md records.
serve-smoke:
	$(GO) run ./cmd/ompss-serve -load -duration 5s -conc 8 -fault-every 7 -o BENCH_serve.json

# Distributed two-process proof (the CI dist-smoke job): every adapted
# suite workload at 1 and 2 worker processes over both rendezvous
# transports, each run verified against the sequential reference; writes
# BENCH_dist.json with wall-clock times and the transfer/chain/forwarding
# accounting (bytes migrated, transfers the version caches avoided,
# dispatch round-trips vs tasks, bytes forwarded worker-to-worker).
dist:
	$(GO) run ./cmd/ompss-bench -dist -small -iters 3 -o BENCH_dist.json

# The TCP-loopback leg alone (the CI dist-smoke job's second leg): workers
# rendezvous over TCP and must pass the HMAC challenge/response handshake.
dist-tcp:
	$(GO) run ./cmd/ompss-bench -dist -dist-transport tcp -small -iters 2 -o /tmp/BENCH_dist_tcp.json

# The distributed coordinator and suite adapters under the race detector,
# including the worker-kill fault-confinement leg.
dist-race:
	$(GO) test -race -count=1 -run 'TestDist' ./internal/dist
	$(GO) test -race -count=1 -run 'TestDistMatchesSequential|TestRGBCMYCacheReuse' ./internal/suite/distkern

# Short native-fuzz leg over the dist wire codec (the CI race job runs the
# same with -fuzztime=30s).
fuzz-frames:
	$(GO) test ./internal/dist -run='^$$' -fuzz=FuzzFrameDecode -fuzztime=15s

# Session-churn soak (the CI dist-smoke job): churn hundreds of request
# sessions and assert the live dependence-record count returns to the
# pre-churn baseline. Gated behind -soak so ordinary test runs stay fast.
soak:
	$(GO) test ./internal/serve -run 'TestSoakSessionChurn' -soak -count=1 -v

# Service-trajectory gate (the CI serve-smoke job): run the baseline's load
# shape fresh and compare against the committed BENCH_serve.json.
# Correctness is hard; latency/throughput gate hard only on a host with the
# baseline's CPU count and warn otherwise.
serve-trend:
	$(GO) run ./cmd/ompss-serve -load -workers 1 -duration 5s -conc 8 -fault-every 7 -o /tmp/BENCH_serve_fresh.json
	$(GO) run ./cmd/ompss-bench -serve-trend -serve-baseline BENCH_serve.json -serve-candidate /tmp/BENCH_serve_fresh.json -serve-tol 0.50

# Run every example end-to-end (the CI examples-smoke job).
examples:
	@for d in examples/*/; do echo "== $$d"; $(GO) run ./$$d || exit 1; done

# Mirrors the CI `lint` job (plus the verify job's vet/gofmt steps) so
# local and CI checks stay in lockstep. staticcheck and govulncheck are
# installed on demand by CI; locally they are skipped with a hint when not
# on PATH.
lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else \
		echo "lint: staticcheck not installed (go install honnef.co/go/tools/cmd/staticcheck@latest); skipping" >&2; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; else \
		echo "lint: govulncheck not installed (go install golang.org/x/vuln/cmd/govulncheck@latest); skipping" >&2; fi

ci: build lint test race bench bench-submit alloc-budget bench-trend serve-smoke dist-race dist-trace soak examples
