# Mirrors .github/workflows/ci.yml so contributors run exactly what CI runs.

GO ?= go

.PHONY: all build test race bench bench-contention bench-submit bench-native alloc-budget examples lint ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent executor packages (the CI `race` job).
race:
	$(GO) test -race ./ompss ./internal/core ./pthread

# Run every benchmark for one iteration so benchmark code cannot rot
# (the CI `bench-smoke` job). For real numbers, raise -benchtime.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Contended-throughput microbenchmark of the native executor, 3 iterations
# per worker count — the before/after scaling gauge for runtime changes.
bench-contention:
	$(GO) test ./internal/bench -bench BenchmarkContendedThroughput -benchtime=3x -run='^$$'

# Submit-path allocation benchmark: registered *Datum handles vs the
# any-key compatibility path (the CI bench-smoke job runs this with
# -benchmem so handle-path regressions show up in the log).
bench-submit:
	$(GO) test ./internal/bench -run='^$$' -bench=BenchmarkSubmit -benchmem -benchtime=300000x

# Allocation regression guard: fails when any submit benchmark exceeds the
# allocs/op ceiling in internal/bench/testdata/alloc_budget.json (the CI
# bench-smoke job runs this).
alloc-budget:
	$(GO) test ./internal/bench -run='^TestSubmitAllocBudget$$' -count=1 -v

# Wall-clock native scheduling harness: runs the suite's small instances on
# real goroutines under policy on/off and writes BENCH_native.json (see
# EXPERIMENTS.md for the recorded trajectory).
bench-native:
	$(GO) run ./cmd/ompss-bench -native -o BENCH_native.json

# Run every example end-to-end (the CI examples-smoke job).
examples:
	@for d in examples/*/; do echo "== $$d"; $(GO) run ./$$d || exit 1; done

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

ci: build lint test race bench bench-submit alloc-budget examples
