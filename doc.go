// Package ompssgo is a from-scratch Go reproduction of "Programming
// Parallel Embedded and Consumer Applications in OpenMP Superscalar"
// (Andersch, Chi & Juurlink, PPoPP 2012): the OmpSs task-dataflow
// programming model (package ompss), the Pthreads baseline it is evaluated
// against (package pthread), the simulated 4-socket cc-NUMA evaluation
// machine (package machine over internal/vm), the paper's 10-benchmark
// embedded/consumer suite (internal/suite), and the harness that
// regenerates Table 1 and the §4/§5 mechanism analyses (internal/bench,
// cmd/ompss-bench).
//
// See README.md for a tour and quickstart, DESIGN.md for the system
// inventory (including the first-class handle API: registered *Datum
// dependence keys, *Handle task futures, context-aware waits, and
// dependence renaming — per-datum version chains that eliminate WAR/WAW
// stalls, ompss.WithRenaming), and
// EXPERIMENTS.md for measured-versus-published results. The root package
// exists to carry the repository-level benchmark suite (bench_test.go);
// the library entry points are packages ompss, pthread, and machine.
package ompssgo
